"""Tests for the netlist container: construction, queries, levelization."""

import pytest

from repro.netlist import Netlist


class TestConstruction:
    def test_add_cell(self, empty_netlist):
        inst = empty_netlist.add_cell("g1", "NAND2_X1", unit="u0")
        assert inst.master.name == "NAND2_X1"
        assert inst.unit == "u0"
        assert empty_netlist.num_cells == 1

    def test_duplicate_cell_rejected(self, empty_netlist):
        empty_netlist.add_cell("g1", "INV_X1")
        with pytest.raises(ValueError):
            empty_netlist.add_cell("g1", "INV_X1")

    def test_add_net_idempotent(self, empty_netlist):
        net1 = empty_netlist.add_net("n1")
        net2 = empty_netlist.add_net("n1")
        assert net1 is net2
        assert empty_netlist.num_nets == 1

    def test_duplicate_port_rejected(self, empty_netlist):
        empty_netlist.add_port("a", "input")
        with pytest.raises(ValueError):
            empty_netlist.add_port("a", "output")

    def test_connect_driver_and_sink(self, empty_netlist):
        inv = empty_netlist.add_cell("inv", "INV_X1")
        buf = empty_netlist.add_cell("buf", "BUF_X1")
        net = empty_netlist.connect("n1", inv.pin("Y"))
        empty_netlist.connect("n1", buf.pin("A"))
        assert net.driver_pin is inv.pin("Y")
        assert buf.pin("A") in net.sink_pins

    def test_two_drivers_rejected(self, empty_netlist):
        a = empty_netlist.add_cell("a", "INV_X1")
        b = empty_netlist.add_cell("b", "INV_X1")
        empty_netlist.connect("n1", a.pin("Y"))
        with pytest.raises(ValueError):
            empty_netlist.connect("n1", b.pin("Y"))

    def test_remove_cell_disconnects_pins(self, tiny_netlist):
        net = tiny_netlist.nets["n1"]
        assert net.num_sinks == 1
        tiny_netlist.remove_cell("u3")
        assert net.num_sinks == 0
        assert "u3" not in tiny_netlist.cells


class TestQueries:
    def test_primary_ports(self, tiny_netlist):
        assert {p.name for p in tiny_netlist.primary_inputs} == {"in_a", "in_b"}
        assert {p.name for p in tiny_netlist.primary_outputs} == {"out_q"}

    def test_cell_classification(self, tiny_netlist):
        assert len(tiny_netlist.sequential_cells()) == 1
        assert len(tiny_netlist.combinational_cells()) == 3
        assert len(tiny_netlist.logic_cells()) == 4
        assert tiny_netlist.filler_cells() == []

    def test_units(self, tiny_netlist):
        assert tiny_netlist.units() == ["left", "right"]
        assert {c.name for c in tiny_netlist.cells_in_unit("left")} == {"u1", "u2"}

    def test_total_cell_area_positive(self, tiny_netlist):
        assert tiny_netlist.total_cell_area() > 0.0

    def test_total_cell_area_excludes_fillers_by_default(self, tiny_netlist):
        base = tiny_netlist.total_cell_area()
        filler = tiny_netlist.add_cell("fill0", "FILL_X4")
        assert tiny_netlist.total_cell_area() == pytest.approx(base)
        assert tiny_netlist.total_cell_area(include_fillers=True) > base
        tiny_netlist.remove_cell(filler.name)

    def test_fanout_fanin(self, tiny_netlist):
        u1 = tiny_netlist.cells["u1"]
        u3 = tiny_netlist.cells["u3"]
        assert [c.name for c in tiny_netlist.fanout_cells(u1)] == ["u3"]
        assert {c.name for c in tiny_netlist.fanin_cells(u3)} == {"u1", "u2"}

    def test_statistics_keys(self, tiny_netlist):
        stats = tiny_netlist.statistics()
        assert stats["num_cells"] == 4
        assert stats["num_sequential"] == 1
        assert stats["total_cell_area_um2"] > 0


class TestLevelization:
    def test_levelize_order_respects_dependencies(self, tiny_netlist):
        order = [c.name for c in tiny_netlist.levelize()]
        assert set(order) == {"u1", "u2", "u3"}
        assert order.index("u1") < order.index("u3")
        assert order.index("u2") < order.index("u3")

    def test_cycle_through_dff_is_allowed(self, empty_netlist):
        # inv output feeds DFF, DFF output feeds inv: sequential loop only.
        inv = empty_netlist.add_cell("inv", "INV_X1")
        dff = empty_netlist.add_cell("dff", "DFF_X1")
        empty_netlist.connect("n_d", inv.pin("Y"))
        empty_netlist.connect("n_d", dff.pin("D"))
        empty_netlist.connect("n_q", dff.pin("Q"))
        empty_netlist.connect("n_q", inv.pin("A"))
        order = empty_netlist.levelize()
        assert [c.name for c in order] == ["inv"]

    def test_combinational_cycle_detected(self, empty_netlist):
        a = empty_netlist.add_cell("a", "INV_X1")
        b = empty_netlist.add_cell("b", "INV_X1")
        empty_netlist.connect("n1", a.pin("Y"))
        empty_netlist.connect("n1", b.pin("A"))
        empty_netlist.connect("n2", b.pin("Y"))
        empty_netlist.connect("n2", a.pin("A"))
        with pytest.raises(ValueError, match="cycle"):
            empty_netlist.levelize()


class TestCopyAndMerge:
    def test_copy_preserves_structure(self, tiny_netlist):
        clone = tiny_netlist.copy()
        assert clone.num_cells == tiny_netlist.num_cells
        assert clone.num_nets == tiny_netlist.num_nets
        assert set(clone.ports) == set(tiny_netlist.ports)
        assert clone.cells["u3"] is not tiny_netlist.cells["u3"]
        assert clone.check() == []

    def test_copy_is_isolated(self, tiny_netlist):
        clone = tiny_netlist.copy()
        clone.cells["u1"].place(1.0, 2.0, 0)
        assert tiny_netlist.cells["u1"].x is None

    def test_copy_preserves_placement(self, tiny_netlist):
        tiny_netlist.cells["u1"].place(3.0, 1.8, 1)
        clone = tiny_netlist.copy()
        assert clone.cells["u1"].x == pytest.approx(3.0)
        assert clone.cells["u1"].row == 1
        tiny_netlist.cells["u1"].x = None
        tiny_netlist.cells["u1"].y = None
        tiny_netlist.cells["u1"].row = None

    def test_merge_prefixes_names_and_sets_unit(self, tiny_netlist, library):
        top = Netlist("top", library)
        top.merge(tiny_netlist, prefix="blk__", unit="blk")
        assert "blk__u1" in top.cells
        assert "blk__in_a" in top.ports
        assert top.cells["blk__u1"].unit == "blk"
        assert top.check() == []

    def test_merge_two_instances(self, tiny_netlist, library):
        top = Netlist("top", library)
        top.merge(tiny_netlist, prefix="a__", unit="a")
        top.merge(tiny_netlist, prefix="b__", unit="b")
        assert top.num_cells == 2 * tiny_netlist.num_cells
        assert top.units() == ["a", "b"]


class TestCheck:
    def test_clean_netlist_has_no_problems(self, tiny_netlist):
        assert tiny_netlist.check() == []

    def test_undriven_net_reported(self, empty_netlist):
        inv = empty_netlist.add_cell("inv", "INV_X1")
        empty_netlist.connect("floating", inv.pin("A"))
        problems = empty_netlist.check()
        assert any("no driver" in p for p in problems)

    def test_unconnected_input_reported(self, empty_netlist):
        empty_netlist.add_cell("inv", "INV_X1")
        problems = empty_netlist.check()
        assert any("unconnected" in p for p in problems)
