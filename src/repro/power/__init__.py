"""Power substrate: vectors, logic simulation, activity, power model, maps."""

from .vectors import VectorSet, generate_vectors
from .logicsim import LogicSimulator, SimulationResult
from .activity import SwitchingActivity, estimate_activity
from .power_model import (
    DEFAULT_FREQUENCY_HZ,
    CellPower,
    PowerModel,
    PowerReport,
)
from .power_map import (
    PowerMap,
    build_power_map,
    cell_bin_indices,
    grid_bin_geometry,
    iter_cell_bins,
)

__all__ = [
    "VectorSet",
    "generate_vectors",
    "LogicSimulator",
    "SimulationResult",
    "SwitchingActivity",
    "estimate_activity",
    "DEFAULT_FREQUENCY_HZ",
    "CellPower",
    "PowerModel",
    "PowerReport",
    "PowerMap",
    "build_power_map",
    "grid_bin_geometry",
    "iter_cell_bins",
    "cell_bin_indices",
]
