"""Persistent campaign-result store: resumable, shareable, single-flight.

:class:`ResultStore` persists one :class:`~repro.flow.runner.CampaignRecord`
per evaluated grid point, keyed by the content of everything the record
depends on — the experiment baseline (netlist, placement, power, thermal
map, package, grid resolution, timing reference), the canonical strategy
spec, the requested overhead, the *resolved* thermal-solver backend, the
active execution engine and whether timing was analysed.  Two consequences:

* **Incremental sweeps** — a repeated campaign against the same store
  recomputes nothing; a sweep extended with new strategies or overheads
  computes only the new points.
* **Free resume** — records are published as each point completes, so an
  interrupted run (Ctrl-C, crash, OOM-kill) leaves every finished point on
  disk and a rerun picks up exactly where it stopped.

Entries use the same verified on-disk format as the artifact store
(``magic + sha256(payload) + payload``, atomically published), so damaged
or truncated entries are detected, evicted and recomputed — never
deserialized blindly.  The store is safe to share between threads,
sharded worker processes and the ``repro serve`` daemon simultaneously:
writers racing on one key all publish the same content through atomic
renames, and :meth:`ResultStore.compute_if_missing` adds *cross-process*
single-flight via ``O_EXCL`` claim files, so exactly one process computes
a missing point while the others wait and then hit.

The module also houses the disk-usage helpers behind ``repro cache``:
:func:`scan_store` and :func:`prune_store` operate uniformly on artifact
stores and result stores (both lay entries out as ``<root>/<shard>/<key>``
files).
"""

from __future__ import annotations

import logging
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..faults import InjectedFault, inject
from .artifacts import (
    FLOW_KEY_VERSION,
    BlobIntegrityError,
    hash_parts,
    netlist_digest,
    package_digest,
    placement_digest,
    power_digest,
    read_blob,
    thermal_map_digest,
    write_blob,
)

logger = logging.getLogger(__name__)

#: Filename suffix of result entries (artifact stores use ``.art``).
RESULT_SUFFIX = ".res"

#: A single-flight claim older than this is considered abandoned (its
#: owner crashed without unlinking) and is broken by the next writer.
STALE_CLAIM_S = 600.0


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------


def setup_digest(setup) -> str:
    """Content digest of everything an evaluation reads from its baseline.

    Covers the placed design (structure + coordinates), the per-cell power
    report, the baseline thermal map (both the outcome's reduction
    reference and the warm-start field), the package stack, the grid
    resolution, the baseline utilization and the timing reference the
    overhead is measured against.  Anything that could change a
    :class:`~repro.flow.experiment.StrategyOutcome` changes this digest.
    """
    return hash_parts(
        "setup",
        netlist_digest(setup.placement.netlist),
        placement_digest(setup.placement),
        power_digest(setup.power),
        thermal_map_digest(setup.thermal_map),
        package_digest(setup.package),
        setup.grid_nx,
        setup.grid_ny,
        setup.base_utilization,
        setup.timing.clock_period_ps,
        setup.timing.critical_path_ps,
    )


def result_key(
    setup_fingerprint: str,
    strategy_spec: str,
    overhead: float,
    method: str,
    engine: str,
    analyze_timing: bool,
) -> str:
    """The store key of one campaign point.

    Args:
        setup_fingerprint: :func:`setup_digest` of the experiment baseline.
        strategy_spec: *Canonical* strategy spec string (``"eri"``,
            ``"hw:ring_um=8.0"``) — canonicalise with
            :func:`~repro.core.resolve_strategy` first so spelling variants
            share an entry.
        overhead: Requested area-overhead fraction (hashed as raw IEEE-754
            bits, so hash-equal means bitwise-equal).
        method: *Resolved* thermal-solver backend (``"lu"`` or
            ``"multigrid"``, never ``"auto"``) — the two backends agree to
            tolerance, not bitwise, so they must not share records.
        engine: Active execution engine (``"compiled"``/``"reference"``).
        analyze_timing: Whether the record carries a timing overhead.
    """
    return hash_parts(
        FLOW_KEY_VERSION, "result",
        setup_fingerprint, strategy_spec, overhead, method, engine,
        analyze_timing,
    )


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ResultStoreStats:
    """Result-store counters at one point in time.

    Attributes:
        hits: Lookups answered from the store (memory or disk).
        misses: Lookups that found nothing usable.
        disk_hits: Subset of ``hits`` read (and verified) from disk.
        writes: Records published.
        corrupt_evictions: Disk entries evicted as damaged.
        single_flight_waits: ``compute_if_missing`` calls that waited on
            another process's computation instead of computing.
        memory_size: Records currently held in memory.
        write_errors: Disk publications that failed (the record stayed in
            memory and the campaign continued; durability only degrades).
    """

    hits: int
    misses: int
    disk_hits: int
    writes: int
    corrupt_evictions: int
    single_flight_waits: int
    memory_size: int
    write_errors: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for JSON metadata."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "writes": self.writes,
            "corrupt_evictions": self.corrupt_evictions,
            "single_flight_waits": self.single_flight_waits,
            "memory_size": self.memory_size,
            "write_errors": self.write_errors,
            "hit_rate": self.hit_rate,
        }


class ResultStore:
    """Persistent, shareable store of evaluated campaign records.

    Layout: ``<root>/<key[:2]>/<key>.res`` — the two-character shard keeps
    directories small for million-record stores.  With ``root=None`` the
    store is memory-only (still single-flight across threads), which is
    what short-lived in-process campaigns use.

    Instances pickle by configuration (root + bound), not contents: a
    sharded worker process that receives one attaches to the same on-disk
    tier with fresh counters, which is exactly how workers publish
    completed records the parent (and any concurrent reader) then sees.

    Args:
        root: Directory of the on-disk tier, created on first write.
        maxsize: In-memory LRU bound (``None`` = unbounded).
    """

    def __init__(
        self, root: Optional[Union[str, Path]] = None, maxsize: Optional[int] = None
    ) -> None:
        if maxsize is not None and maxsize < 0:
            raise ValueError("maxsize must be None or >= 0")
        self.root = Path(root) if root is not None else None
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, object]" = OrderedDict()
        self._inflight: Dict[str, threading.Lock] = {}
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._writes = 0
        self._corrupt_evictions = 0
        self._single_flight_waits = 0
        self._write_errors = 0

    # -- pickling (for sharded workers) --------------------------------------

    def __getstate__(self):
        return {"root": self.root, "maxsize": self.maxsize}

    def __setstate__(self, state):
        self.__init__(root=state["root"], maxsize=state["maxsize"])

    # -- paths ---------------------------------------------------------------

    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / key[:2] / f"{key}{RESULT_SUFFIX}"

    def _claim_path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / key[:2] / f"{key}.lock"

    # -- lookup / publish ----------------------------------------------------

    def get(self, key: str):
        """The stored record for ``key``, or ``None`` on a miss."""
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._hits += 1
                self._memory.move_to_end(key)
                return cached
        if self.root is not None:
            record = self._read_disk(key)
            if record is not None:
                with self._lock:
                    self._hits += 1
                    self._disk_hits += 1
                    self._insert_memory(key, record)
                return record
        with self._lock:
            self._misses += 1
        return None

    def put(self, key: str, record) -> None:
        """Publish a record (memory, and disk when configured).

        Concurrent writers of the same key are safe: both publish the same
        content through an atomic rename, so readers see one intact entry.
        The disk tier is best-effort: an I/O failure (disk full, permission
        flip, injected ``store.write`` fault) is counted and logged, and
        the record stays served from memory — a later run just recomputes.
        """
        with self._lock:
            self._writes += 1
            self._insert_memory(key, record)
        if self.root is not None:
            try:
                inject("store.write", {"key": key})
                write_blob(self._path(key), record)
            except (OSError, InjectedFault) as error:
                with self._lock:
                    self._write_errors += 1
                logger.warning(
                    "result store: failed to persist %s (%r); record kept "
                    "in memory only", key, error,
                )

    def _insert_memory(self, key: str, record) -> None:
        if self.maxsize == 0:
            return
        self._memory[key] = record
        self._memory.move_to_end(key)
        while self.maxsize is not None and len(self._memory) > self.maxsize:
            self._memory.popitem(last=False)

    def _read_disk(self, key: str):
        path = self._path(key)
        try:
            # An injected ``store.read`` fault models a damaged entry:
            # evicted and recomputed, exactly like an integrity failure.
            inject("store.read", {"key": key})
            return read_blob(path)
        except OSError:
            return None
        except (BlobIntegrityError, InjectedFault):
            with self._lock:
                self._corrupt_evictions += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    # -- single-flight -------------------------------------------------------

    def compute_if_missing(
        self,
        key: str,
        compute: Callable[[], object],
        poll_s: float = 0.02,
        wait_timeout_s: float = 300.0,
    ) -> Tuple[object, bool]:
        """Return the record for ``key``, computing it at most once globally.

        Single-flight spans both threads (a per-key in-process lock) and
        processes (an ``O_CREAT | O_EXCL`` claim file next to the entry):
        the first caller to claim computes and publishes; everyone else
        polls until the entry appears and hits.  A claim left behind by a
        crashed owner goes stale after :data:`STALE_CLAIM_S` and is broken.

        Args:
            key: The result key.
            compute: Zero-argument callable producing the record.
            poll_s: Wait-side polling interval.
            wait_timeout_s: After this long waiting on another computer,
                give up and compute locally anyway (the claim holder may be
                livelocked); correctness is unaffected since both publish
                identical content.

        Returns:
            ``(record, computed)`` where ``computed`` says whether *this*
            call ran ``compute``.
        """
        record = self.get(key)
        if record is not None:
            return record, False

        with self._lock:
            thread_gate = self._inflight.setdefault(key, threading.Lock())
        try:
            with thread_gate:
                record = self.get(key)
                if record is not None:
                    return record, False
                if self.root is None:
                    record = compute()
                    self.put(key, record)
                    return record, True
                return self._compute_cross_process(
                    key, compute, poll_s, wait_timeout_s
                )
        finally:
            with self._lock:
                self._inflight.pop(key, None)

    def _compute_cross_process(
        self,
        key: str,
        compute: Callable[[], object],
        poll_s: float,
        wait_timeout_s: float,
    ) -> Tuple[object, bool]:
        claim = self._claim_path(key)
        claim.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + wait_timeout_s
        waited = False
        while True:
            try:
                fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                # Someone else is computing: wait for their publication.
                waited = True
                record = self._read_disk(key)
                if record is not None:
                    with self._lock:
                        self._hits += 1
                        self._disk_hits += 1
                        self._single_flight_waits += 1
                        self._insert_memory(key, record)
                    return record, False
                try:
                    age = time.time() - claim.stat().st_mtime
                except OSError:
                    continue  # claim released between open and stat: retry
                if age > STALE_CLAIM_S:
                    try:
                        claim.unlink()
                    except OSError:
                        pass
                    continue
                if time.monotonic() > deadline:
                    break  # claim holder livelocked: compute locally
                time.sleep(poll_s)
                continue
            # Claimed: we are the one computer for this key.
            os.close(fd)
            try:
                # Crash seam: an injected ``kind="exit"`` here simulates a
                # kill -9 between claiming and publishing — the orphaned
                # claim file is exactly what ``repro fsck`` must repair
                # (an ordinary raise still unlinks it in the finally).
                inject("store.claim", {"key": key})
                record = self._read_disk(key)
                if record is not None:
                    with self._lock:
                        self._hits += 1
                        self._disk_hits += 1
                        if waited:
                            self._single_flight_waits += 1
                        self._insert_memory(key, record)
                    return record, False
                record = compute()
                self.put(key, record)
                return record, True
            finally:
                try:
                    claim.unlink()
                except OSError:
                    pass
        record = compute()
        self.put(key, record)
        return record, True

    # -- bookkeeping ---------------------------------------------------------

    def stats(self) -> ResultStoreStats:
        """Snapshot of the store counters."""
        with self._lock:
            return ResultStoreStats(
                hits=self._hits,
                misses=self._misses,
                disk_hits=self._disk_hits,
                writes=self._writes,
                corrupt_evictions=self._corrupt_evictions,
                single_flight_waits=self._single_flight_waits,
                memory_size=len(self._memory),
                write_errors=self._write_errors,
            )

    def clear_memory(self) -> None:
        """Drop the in-memory tier (disk entries and counters are kept)."""
        with self._lock:
            self._memory.clear()

    def shrink(self, max_entries: int) -> int:
        """Evict least-recently-used entries until at most ``max_entries``.

        The LRU shrink hook for the service tier's resource governor:
        under memory pressure it trims the memory tier without touching
        disk entries or ``maxsize`` (pass ``maxsize=0`` separately to
        stop re-growth).  Returns the number of entries evicted.
        """
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        evicted = 0
        with self._lock:
            while len(self._memory) > max_entries:
                self._memory.popitem(last=False)
                evicted += 1
        return evicted

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)


# ---------------------------------------------------------------------------
# Disk usage & pruning (``repro cache``)
# ---------------------------------------------------------------------------

#: Entry suffixes the scanner recognises, with human labels.
_ENTRY_SUFFIXES = (".art", RESULT_SUFFIX)


@dataclass
class StoreUsage:
    """Disk usage of one on-disk store.

    Attributes:
        root: The scanned directory.
        entries: Number of valid-looking entry files.
        total_bytes: Their cumulative size.
        by_group: ``group -> (entries, bytes)``; the group is the
            artifact-store stage directory (``synth``, ``thermal``, ...)
            or ``"results"`` for result-store shards.
        stray_files: Leftover ``.tmp.*`` / ``.lock`` files found (these are
            cleaned by :func:`prune_store`).
    """

    root: Path
    entries: int = 0
    total_bytes: int = 0
    by_group: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    stray_files: int = 0


@dataclass
class PruneReport:
    """What one :func:`prune_store` pass removed.

    Attributes:
        removed: Entry files deleted.
        freed_bytes: Bytes reclaimed (entries only).
        kept: Entry files remaining.
        strays_removed: Stale ``.tmp.*`` / ``.lock`` files deleted.
    """

    removed: int = 0
    freed_bytes: int = 0
    kept: int = 0
    strays_removed: int = 0


def _store_group(root: Path, path: Path) -> str:
    """Display group of one entry: stage directory or ``results``."""
    parent = path.parent
    if parent == root:
        return "results" if path.suffix == RESULT_SUFFIX else parent.name
    name = parent.name
    # Result-store shards are two-hex-character directories.
    if path.suffix == RESULT_SUFFIX and len(name) == 2:
        return "results"
    return name


def _iter_entries(root: Path):
    """Yield ``(path, stat)`` for every entry file under ``root``."""
    for path in sorted(root.rglob("*")):
        if not path.is_file() or ".quarantine" in path.parts:
            continue
        if path.suffix in _ENTRY_SUFFIXES:
            try:
                yield path, path.stat()
            except OSError:
                continue


def _iter_strays(root: Path):
    """Yield leftover temp/claim files (crashed writers leave these)."""
    for path in sorted(root.rglob("*")):
        if not path.is_file() or ".quarantine" in path.parts:
            continue
        if path.suffix == ".lock" or ".tmp." in path.name:
            yield path


def scan_store(root: Union[str, Path]) -> StoreUsage:
    """Measure the disk usage of an artifact or result store."""
    root = Path(root)
    usage = StoreUsage(root=root)
    if not root.exists():
        return usage
    for path, stat in _iter_entries(root):
        usage.entries += 1
        usage.total_bytes += stat.st_size
        group = _store_group(root, path)
        count, size = usage.by_group.get(group, (0, 0))
        usage.by_group[group] = (count + 1, size + stat.st_size)
    usage.stray_files = sum(1 for _ in _iter_strays(root))
    return usage


def prune_store(
    root: Union[str, Path],
    max_age_days: Optional[float] = None,
    max_size_mb: Optional[float] = None,
    now: Optional[float] = None,
    dry_run: bool = False,
    min_age_s: float = 60.0,
) -> PruneReport:
    """Prune an on-disk store by age and/or total size.

    Entries older than ``max_age_days`` are removed first; if the store is
    still larger than ``max_size_mb``, the oldest remaining entries (by
    mtime) go next until it fits.  Stale ``.tmp.*`` and ``.lock`` files
    older than :data:`STALE_CLAIM_S` are always cleaned up.  Pruning is
    safe against live stores: entries younger than ``min_age_s`` are never
    touched (so a blob a concurrent writer just published, or a claim it
    just took, cannot be deleted out from under it), and a concurrently
    re-inserted entry simply reappears on the next run's write.

    Args:
        root: Store directory.
        max_age_days: Remove entries older than this many days.
        max_size_mb: Shrink the store below this size (megabytes).
        now: Reference time (``time.time()`` when omitted; injectable for
            tests).
        dry_run: Report what would be removed without deleting anything.
        min_age_s: Live-writer guard — entries newer than this survive any
            age or size pressure.
    """
    root = Path(root)
    report = PruneReport()
    if not root.exists():
        return report
    reference = time.time() if now is None else now
    fresh_after = reference - min_age_s

    entries: List[Tuple[Path, float, int]] = [
        (path, stat.st_mtime, stat.st_size) for path, stat in _iter_entries(root)
    ]
    entries.sort(key=lambda item: item[1])  # oldest first

    doomed: List[Tuple[Path, int]] = []
    survivors: List[Tuple[Path, float, int]] = []
    if max_age_days is not None:
        cutoff = reference - max_age_days * 86400.0
        for path, mtime, size in entries:
            if mtime < cutoff and mtime <= fresh_after:
                doomed.append((path, size))
            else:
                survivors.append((path, mtime, size))
    else:
        survivors = entries

    if max_size_mb is not None:
        budget = max_size_mb * 1024.0 * 1024.0
        total = sum(size for _path, _mtime, size in survivors)
        index = 0
        while total > budget and index < len(survivors):
            path, mtime, size = survivors[index]
            if mtime > fresh_after:
                # Oldest-first order: everything from here on is fresher
                # still, so nothing else is prunable under the guard.
                break
            doomed.append((path, size))
            total -= size
            index += 1
        survivors = survivors[index:]

    for path, size in doomed:
        if not dry_run:
            try:
                path.unlink()
            except OSError:
                continue
        report.removed += 1
        report.freed_bytes += size
    report.kept = len(survivors)

    for path in _iter_strays(root):
        try:
            if reference - path.stat().st_mtime <= STALE_CLAIM_S:
                continue
        except OSError:
            continue
        if not dry_run:
            try:
                path.unlink()
            except OSError:
                continue
        report.strays_removed += 1
    return report


__all__ = [
    "ResultStore",
    "ResultStoreStats",
    "setup_digest",
    "result_key",
    "scan_store",
    "prune_store",
    "StoreUsage",
    "PruneReport",
    "RESULT_SUFFIX",
    "STALE_CLAIM_S",
]
