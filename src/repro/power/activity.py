"""Switching-activity annotation.

Bridges the logic simulator and the power model: a
:class:`SwitchingActivity` object stores, for every net, the average number
of transitions per clock cycle and the static (logic-1) probability — the
same quantities a SAIF/VCD-based flow annotates onto the netlist before
power analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..netlist import Netlist
from .logicsim import LogicSimulator, SimulationResult
from .vectors import generate_vectors


@dataclass
class SwitchingActivity:
    """Per-net switching activity.

    Attributes:
        toggle_rates: Mapping net name -> average transitions per cycle.
        static_probabilities: Mapping net name -> probability of logic 1.
    """

    toggle_rates: Dict[str, float] = field(default_factory=dict)
    static_probabilities: Dict[str, float] = field(default_factory=dict)

    def toggle_rate(self, net: str, default: float = 0.0) -> float:
        """Toggle rate of ``net`` (transitions per cycle)."""
        return self.toggle_rates.get(net, default)

    def static_probability(self, net: str, default: float = 0.5) -> float:
        """Static probability of ``net`` being logic 1."""
        return self.static_probabilities.get(net, default)

    def scaled(self, factor: float) -> "SwitchingActivity":
        """Return a copy with every toggle rate multiplied by ``factor``."""
        if factor < 0.0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        return SwitchingActivity(
            toggle_rates={net: rate * factor for net, rate in self.toggle_rates.items()},
            static_probabilities=dict(self.static_probabilities),
        )

    def average_toggle_rate(self) -> float:
        """Mean toggle rate over all annotated nets."""
        if not self.toggle_rates:
            return 0.0
        return sum(self.toggle_rates.values()) / len(self.toggle_rates)

    @classmethod
    def from_simulation(cls, netlist: Netlist, result: SimulationResult) -> "SwitchingActivity":
        """Build the annotation from a :class:`SimulationResult`."""
        toggles: Dict[str, float] = {}
        probs: Dict[str, float] = {}
        for net_name in netlist.nets:
            toggles[net_name] = result.toggle_rate(net_name)
            probs[net_name] = result.static_probability(net_name)
        return cls(toggle_rates=toggles, static_probabilities=probs)

    @classmethod
    def uniform(cls, netlist: Netlist, toggle_rate: float = 0.2,
                static_probability: float = 0.5) -> "SwitchingActivity":
        """Uniform activity on every net (a quick vectorless estimate)."""
        return cls(
            toggle_rates={net: toggle_rate for net in netlist.nets},
            static_probabilities={net: static_probability for net in netlist.nets},
        )


def estimate_activity(
    netlist: Netlist,
    toggle_probabilities: Optional[Mapping[str, float]] = None,
    num_cycles: int = 24,
    batch_size: int = 32,
    default_probability: float = 0.5,
    seed: int = 2010,
    warmup_cycles: int = 2,
) -> SwitchingActivity:
    """Run vector generation + logic simulation and return net activity.

    This is the convenience path corresponding to the paper's
    "VCS logic simulation of randomly generated test vectors" step.

    Args:
        netlist: Design to simulate.
        toggle_probabilities: Per-primary-input toggle probability (see
            :func:`repro.power.vectors.generate_vectors`).
        num_cycles: Simulated clock cycles.
        batch_size: Parallel random streams.
        default_probability: Toggle probability for unlisted inputs.
        seed: Random seed.
        warmup_cycles: Cycles excluded from the statistics.

    Returns:
        The per-net :class:`SwitchingActivity`.
    """
    vectors = generate_vectors(
        netlist,
        toggle_probabilities or {},
        num_cycles=num_cycles,
        batch_size=batch_size,
        default_probability=default_probability,
        seed=seed,
    )
    simulator = LogicSimulator(netlist)
    result = simulator.simulate(vectors, warmup_cycles=warmup_cycles)
    return SwitchingActivity.from_simulation(netlist, result)
