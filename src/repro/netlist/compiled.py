"""Compiled structure-of-arrays form of a netlist.

The flow's hot paths — logic simulation, power estimation, thermal-grid
binning and static timing — are all "for every gate / cell / net" loops.
:class:`CompiledNetlist` lowers a :class:`~repro.netlist.netlist.Netlist`
once into levelized NumPy index arrays so those loops become whole-array
expressions:

* every cell and net gets a dense integer index (in ``netlist.cells`` /
  ``netlist.nets`` iteration order, so independently compiled copies of the
  same design align element-for-element);
* combinational cells are levelized and grouped by master cell, giving each
  group a ``(n, fanin)`` value-slot matrix and an op code the engine
  evaluates with one vectorized boolean expression per group;
* per-cell electrical vectors (leakage, internal energy, drive resistance,
  intrinsic delay) and per-net load vectors (sink pin capacitance, fanout)
  are extracted for the power model and the timing engine;
* net terminal lists are flattened into segment arrays so all net HPWLs are
  computed with two ``reduceat`` passes.

Value slots: net ``i`` lives in row ``i`` of a values array; one extra
``zero`` row models unconnected/undriven inputs (always ``False``/arrival
``0``), and one ``trash`` row absorbs writes from unconnected output pins.

Instances are obtained through :meth:`Netlist.compiled`, which caches the
compiled form and rebuilds it when the netlist's structural version changes
(any mutation through the ``Netlist`` API bumps the version).  Placement
coordinates are *not* baked in: coordinate-dependent arrays are gathered on
demand and cached against the process-wide
:attr:`CellInstance.placement_epoch`, so moving cells never stales a
compiled netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .cell import CellInstance
from .library import ROW_HEIGHT, VECTOR_OP_CODES, MasterCell
from .netlist import Netlist


@dataclass
class GateGroup:
    """Cells of one master within one level.

    Attributes:
        master: The shared master cell.
        op: Vector-op code (``None`` when the master's function is not a
            built-in, in which case evaluation falls back to per-cell calls).
        cells: Cell indices, shape ``(n,)``.
        fanin: Input value slots, shape ``(n, num_inputs)``.
        out: Output value slots, shape ``(n, num_outputs)`` (the trash slot
            for unconnected output pins).
    """

    master: MasterCell
    op: Optional[str]
    cells: np.ndarray
    fanin: np.ndarray
    out: np.ndarray


class CompiledNetlist:
    """Levelized structure-of-arrays lowering of one netlist.

    Build via :meth:`Netlist.compiled` (cached) rather than directly.
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.version = netlist._version

        cells = list(netlist.cells.values())
        nets = list(netlist.nets.values())
        self._cells = cells
        self.cell_names: List[str] = [c.name for c in cells]
        self.cell_index: Dict[str, int] = {n: i for i, n in enumerate(self.cell_names)}
        self.net_names: List[str] = [n.name for n in nets]
        self.net_index: Dict[str, int] = {n: i for i, n in enumerate(self.net_names)}
        self.num_cells = len(cells)
        self.num_nets = len(nets)
        #: Value slot that is always ``False`` / arrival ``0.0``.
        self.zero_slot = self.num_nets
        #: Value slot that absorbs writes from unconnected output pins.
        self.trash_slot = self.num_nets + 1
        self.num_slots = self.num_nets + 2

        # -- per-cell geometry vectors -----------------------------------
        masters = [c.master for c in cells]
        self._masters = masters
        self.cell_width_um = np.array([c.width for c in cells], dtype=float)
        self.cell_area_um2 = np.array([c.area for c in cells], dtype=float)
        self.is_filler = np.array([m.is_filler for m in masters], dtype=bool)
        # Electrical vectors (leakage, energies, delays) are built lazily —
        # see the properties below — so consumers that only need geometry
        # (power binning, hotspot attribution on a freshly transformed
        # netlist) skip the master-cell gathers entirely.
        self._electrical: Optional[Tuple[np.ndarray, ...]] = None

        # -- per-cell unit codes -----------------------------------------
        # Dense integer codes for the logical unit each cell belongs to, in
        # first-seen cell order; lets hotspot attribution and other
        # per-unit reductions run as one np.bincount instead of a Python
        # dict accumulation.
        unit_code_of: Dict[str, int] = {}
        codes = np.empty(self.num_cells, dtype=np.int64)
        for i, cell in enumerate(cells):
            code = unit_code_of.setdefault(cell.unit, len(unit_code_of))
            codes[i] = code
        self.unit_names: List[str] = list(unit_code_of)
        self.unit_codes = codes
        self.num_units = len(self.unit_names)

        # -- per-net load vectors (lazy, see properties below) -----------
        self._net_loads: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._outpins: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._sequential: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

        # -- primary ports -----------------------------------------------
        net_index = self.net_index
        self.pi_ports: List[Tuple[str, int]] = [
            (p.name, net_index[p.net.name] if p.net is not None else -1)
            for p in netlist.primary_inputs
        ]

        # -- lazily built sections ----------------------------------------
        # Levelization, STA launch/endpoint structure and the flattened
        # net-terminal arrays are each built on first use: consumers that
        # only need the cheap per-cell/per-net vectors (e.g. power binning
        # on a freshly copied netlist) skip their cost entirely.
        self._nets = nets
        self._levels: Optional[List[List[GateGroup]]] = None
        self._driven_slots: Optional[np.ndarray] = None
        self._sta_arrays: Optional[Tuple[np.ndarray, np.ndarray, List[str], np.ndarray, np.ndarray]] = None
        self._terminals_built = False

        # -- coordinate cache (placement-epoch keyed) ---------------------
        self._coords_epoch = -1
        self._coords: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Lazy sections
    # ------------------------------------------------------------------

    def _ensure_electrical(self) -> Tuple[np.ndarray, ...]:
        if self._electrical is None:
            masters = self._masters
            self._electrical = (
                np.array([m.leakage_nw for m in masters], dtype=float),
                np.array([m.internal_energy_fj for m in masters], dtype=float),
                np.array([m.intrinsic_delay_ps for m in masters], dtype=float),
                np.array([m.drive_res_kohm for m in masters], dtype=float),
                np.array([m.is_sequential for m in masters], dtype=bool),
            )
        return self._electrical

    @property
    def leakage_nw(self) -> np.ndarray:
        """Per-cell leakage in nanowatts (built on first use)."""
        return self._ensure_electrical()[0]

    @property
    def internal_energy_fj(self) -> np.ndarray:
        """Per-cell internal switching energy in femtojoules."""
        return self._ensure_electrical()[1]

    @property
    def intrinsic_delay_ps(self) -> np.ndarray:
        """Per-cell intrinsic delay in picoseconds."""
        return self._ensure_electrical()[2]

    @property
    def drive_res_kohm(self) -> np.ndarray:
        """Per-cell drive resistance in kiloohms."""
        return self._ensure_electrical()[3]

    @property
    def is_sequential(self) -> np.ndarray:
        """Per-cell sequential-master flags."""
        return self._ensure_electrical()[4]

    def _ensure_net_loads(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._net_loads is None:
            sink_pin_cap = np.zeros(self.num_nets)
            num_sinks = np.zeros(self.num_nets, dtype=np.int64)
            for i, net in enumerate(self._nets):
                # Summed in sink-pin order, matching the reference loop
                # exactly.
                sink_pin_cap[i] = sum(
                    p.cell.master.input_cap_ff for p in net.sink_pins
                )
                num_sinks[i] = net.num_sinks
            self._net_loads = (sink_pin_cap, num_sinks)
        return self._net_loads

    @property
    def sink_pin_cap_ff(self) -> np.ndarray:
        """Summed sink-pin input capacitance per net (built on first use)."""
        return self._ensure_net_loads()[0]

    @property
    def num_sinks(self) -> np.ndarray:
        """Sink count per net (built on first use)."""
        return self._ensure_net_loads()[1]

    def _ensure_outpins(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._outpins is None:
            outpin_cell: List[int] = []
            outpin_net: List[int] = []
            net_index = self.net_index
            for ci, cell in enumerate(self._cells):
                if cell.is_filler:
                    continue
                for pin in cell.output_pins:
                    if pin.net is not None:
                        outpin_cell.append(ci)
                        outpin_net.append(net_index[pin.net.name])
            self._outpins = (
                np.array(outpin_cell, dtype=np.int64),
                np.array(outpin_net, dtype=np.int64),
            )
        return self._outpins

    @property
    def outpin_cell(self) -> np.ndarray:
        """Cell index of every connected non-filler output pin."""
        return self._ensure_outpins()[0]

    @property
    def outpin_net(self) -> np.ndarray:
        """Net index of every connected non-filler output pin."""
        return self._ensure_outpins()[1]

    def _ensure_sequential(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._sequential is None:
            net_index = self.net_index
            seq_cells: List[int] = []
            seq_d_slot: List[int] = []
            seq_q_slot: List[int] = []
            for ci, cell in enumerate(self._cells):
                if not cell.is_sequential:
                    continue
                in_pins = cell.input_pins
                out_pins = cell.output_pins
                d = in_pins[0].net if in_pins else None
                q = out_pins[0].net if out_pins else None
                seq_cells.append(ci)
                seq_d_slot.append(
                    net_index[d.name] if d is not None else self.zero_slot
                )
                seq_q_slot.append(
                    net_index[q.name] if q is not None else self.trash_slot
                )
            self._sequential = (
                np.array(seq_cells, dtype=np.int64),
                np.array(seq_d_slot, dtype=np.int64),
                np.array(seq_q_slot, dtype=np.int64),
            )
        return self._sequential

    @property
    def seq_cells(self) -> np.ndarray:
        """Cell indices of sequential cells (built on first use)."""
        return self._ensure_sequential()[0]

    @property
    def seq_d_slot(self) -> np.ndarray:
        """Per-flop D-input value slot."""
        return self._ensure_sequential()[1]

    @property
    def seq_q_slot(self) -> np.ndarray:
        """Per-flop Q-output value slot."""
        return self._ensure_sequential()[2]

    @property
    def levels(self) -> List[List[GateGroup]]:
        """Levelized gate groups (built on first use)."""
        if self._levels is None:
            self._levels = self._levelize(self._cells)
        return self._levels

    @property
    def driven_slots(self) -> np.ndarray:
        """Value slots written by PIs, flip-flop Qs and gate outputs."""
        if self._driven_slots is None:
            driven: List[int] = [s for _, s in self.pi_ports if s >= 0]
            driven.extend(int(s) for s in self.seq_q_slot if s < self.num_nets)
            for level in self.levels:
                for group in level:
                    driven.extend(
                        int(s) for s in group.out.ravel() if s < self.num_nets
                    )
            self._driven_slots = np.array(driven, dtype=np.int64)
        return self._driven_slots

    def _ensure_sta_arrays(self) -> None:
        if self._sta_arrays is not None:
            return
        net_index = self.net_index
        launch_cell: List[int] = []
        launch_net: List[int] = []
        ep_names: List[str] = []
        ep_slot: List[int] = []
        ep_setup: List[float] = []
        for ci, cell in enumerate(self._cells):
            if not cell.is_sequential:
                continue
            for pin in cell.output_pins:
                if pin.net is not None:
                    launch_cell.append(ci)
                    launch_net.append(net_index[pin.net.name])
            for pin in cell.input_pins:
                if pin.net is None:
                    continue
                ep_names.append(pin.full_name)
                ep_slot.append(net_index[pin.net.name])
                ep_setup.append(0.3 * cell.master.intrinsic_delay_ps)
        for port in self.netlist.primary_outputs:
            if port.net is not None:
                ep_names.append(port.name)
                ep_slot.append(net_index[port.net.name])
                ep_setup.append(0.0)
        self._sta_arrays = (
            np.array(launch_cell, dtype=np.int64),
            np.array(launch_net, dtype=np.int64),
            ep_names,
            np.array(ep_slot, dtype=np.int64),
            np.array(ep_setup, dtype=float),
        )

    @property
    def launch_cell(self) -> np.ndarray:
        self._ensure_sta_arrays()
        return self._sta_arrays[0]

    @property
    def launch_net(self) -> np.ndarray:
        self._ensure_sta_arrays()
        return self._sta_arrays[1]

    @property
    def ep_names(self) -> List[str]:
        self._ensure_sta_arrays()
        return self._sta_arrays[2]

    @property
    def ep_slot(self) -> np.ndarray:
        self._ensure_sta_arrays()
        return self._sta_arrays[3]

    @property
    def ep_setup(self) -> np.ndarray:
        self._ensure_sta_arrays()
        return self._sta_arrays[4]

    # ------------------------------------------------------------------
    # Levelization
    # ------------------------------------------------------------------

    def _levelize(self, cells: List[CellInstance]) -> List[List[GateGroup]]:
        """Topologically level the combinational cells and group by master."""
        net_pos = {id(net): i for i, net in enumerate(self._nets)}
        cell_pos = {id(cell): i for i, cell in enumerate(cells)}

        seq_or_filler = [c.is_sequential or c.is_filler for c in cells]
        comb = [ci for ci, skip in enumerate(seq_or_filler) if not skip]
        comb_pos = [-1] * len(cells)
        for k, ci in enumerate(comb):
            comb_pos[ci] = k

        # One pass over the pins: value slots per cell (reused below for the
        # group matrices) and the comb-to-comb dependency edges.
        zero = self.zero_slot
        trash = self.trash_slot
        fanin_slots: List[List[int]] = []
        out_slots: List[List[int]] = []
        indegree = [0] * len(comb)
        level = [0] * len(comb)
        dependents: List[List[int]] = [[] for _ in comb]
        for k, ci in enumerate(comb):
            cell = cells[ci]
            pins = cell.pins
            master = cell.master
            slots = []
            for name in master.inputs:
                net = pins[name].net
                if net is None:
                    slots.append(zero)
                    continue
                slots.append(net_pos[id(net)])
                driver_pin = net.driver_pin
                if driver_pin is None:
                    continue
                di = cell_pos[id(driver_pin.cell)]
                if seq_or_filler[di]:
                    continue
                indegree[k] += 1
                dependents[comb_pos[di]].append(k)
            fanin_slots.append(slots)
            out_slots.append(
                [
                    net_pos[id(net)] if (net := pins[name].net) is not None else trash
                    for name in master.outputs
                ]
            )

        from collections import deque

        queue = deque(k for k in range(len(comb)) if indegree[k] == 0)
        processed = 0
        order: List[int] = []
        while queue:
            k = queue.popleft()
            order.append(k)
            processed += 1
            for dep in dependents[k]:
                if level[k] + 1 > level[dep]:
                    level[dep] = level[k] + 1
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    queue.append(dep)

        if processed != len(comb):
            unresolved = [
                cells[comb[k]].name for k in range(len(comb)) if indegree[k] > 0
            ]
            raise ValueError(
                "combinational cycle detected involving cells: "
                + ", ".join(sorted(unresolved)[:10])
            )

        num_levels = max(level, default=-1) + 1
        # Group within each level.  Masters sharing a vector-op code and pin
        # arity (e.g. INV_X1/INV_X2) merge into one group — the op evaluates
        # them identically and per-cell electrical data is gathered by cell
        # index anyway; unknown-function masters group by master so the
        # fallback can call their own ``evaluate``.
        buckets: List[Dict[object, Tuple[MasterCell, Optional[str], List[int]]]] = [
            dict() for _ in range(num_levels)
        ]
        for k in order:
            ci = comb[k]
            master = cells[ci].master
            op = VECTOR_OP_CODES.get(master.function)
            key = (op, len(master.inputs), len(master.outputs)) if op else master
            entry = buckets[level[k]].get(key)
            if entry is None:
                buckets[level[k]][key] = (master, op, [ci])
            else:
                entry[2].append(ci)

        levels: List[List[GateGroup]] = []
        for bucket in buckets:
            groups: List[GateGroup] = []
            for master, op, members in bucket.values():
                fanin = np.array(
                    [fanin_slots[comb_pos[ci]] for ci in members], dtype=np.int64
                ).reshape(len(members), len(master.inputs))
                out = np.array(
                    [out_slots[comb_pos[ci]] for ci in members], dtype=np.int64
                ).reshape(len(members), len(master.outputs))
                groups.append(
                    GateGroup(
                        master=master,
                        op=op,
                        cells=np.array(members, dtype=np.int64),
                        fanin=fanin,
                        out=out,
                    )
                )
            levels.append(groups)
        return levels

    # ------------------------------------------------------------------
    # Vectorized logic evaluation
    # ------------------------------------------------------------------

    @staticmethod
    def _eval_group(group: GateGroup, values: np.ndarray) -> None:
        """Evaluate one gate group in place on the values array."""
        op = group.op
        n = group.cells.shape[0]
        lanes = values.shape[1]
        num_outputs = group.out.shape[1]
        if group.fanin.shape[1] == 0:
            if op == "const0":
                values[group.out[:, 0]] = np.zeros((n, lanes), dtype=bool)
            else:
                # Custom zero-input master (tie cell): honour its function.
                evaluate = group.master.evaluate
                for r in range(n):
                    outputs = evaluate([])
                    for c in range(min(len(outputs), num_outputs)):
                        values[group.out[r, c]] = outputs[c]
            return
        vals = values[group.fanin]  # (n, arity, lanes)
        if op == "inv":
            values[group.out[:, 0]] = ~vals[:, 0]
        elif op == "buf":
            values[group.out[:, 0]] = vals[:, 0]
        elif op == "and":
            values[group.out[:, 0]] = np.logical_and.reduce(vals, axis=1)
        elif op == "nand":
            values[group.out[:, 0]] = ~np.logical_and.reduce(vals, axis=1)
        elif op == "or":
            values[group.out[:, 0]] = np.logical_or.reduce(vals, axis=1)
        elif op == "nor":
            values[group.out[:, 0]] = ~np.logical_or.reduce(vals, axis=1)
        elif op == "xor":
            values[group.out[:, 0]] = np.logical_xor.reduce(vals, axis=1)
        elif op == "xnor":
            values[group.out[:, 0]] = ~np.logical_xor.reduce(vals, axis=1)
        elif op == "mux2":
            a, b, sel = vals[:, 0], vals[:, 1], vals[:, 2]
            values[group.out[:, 0]] = np.where(sel, b, a)
        elif op == "aoi21":
            a, b, c = vals[:, 0], vals[:, 1], vals[:, 2]
            values[group.out[:, 0]] = ~((a & b) | c)
        elif op == "oai21":
            a, b, c = vals[:, 0], vals[:, 1], vals[:, 2]
            values[group.out[:, 0]] = ~((a | b) & c)
        elif op == "ha":
            a, b = vals[:, 0], vals[:, 1]
            values[group.out[:, 0]] = a ^ b
            values[group.out[:, 1]] = a & b
        elif op == "fa":
            a, b, cin = vals[:, 0], vals[:, 1], vals[:, 2]
            axb = a ^ b
            values[group.out[:, 0]] = axb ^ cin
            values[group.out[:, 1]] = (a & b) | (cin & axb)
        elif op == "const0":
            values[group.out[:, 0]] = np.zeros((n, lanes), dtype=bool)
        else:
            # Unknown custom function: evaluate cell by cell (reference
            # semantics, including zip-style output truncation), still
            # amortised within the level.
            evaluate = group.master.evaluate
            for r in range(n):
                outputs = evaluate(list(vals[r]))
                for c in range(min(len(outputs), num_outputs)):
                    values[group.out[r, c]] = outputs[c]

    def evaluate_levels(self, values: np.ndarray) -> None:
        """Evaluate all combinational levels in place.

        ``values`` must have shape ``(num_slots, lanes)`` with primary-input
        and flip-flop-output rows already filled.
        """
        for level in self.levels:
            for group in level:
                self._eval_group(group, values)

    # ------------------------------------------------------------------
    # Coordinate-dependent arrays (placement-epoch cached)
    # ------------------------------------------------------------------

    def cell_center_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-cell centre coordinates ``(cx, cy, placed_mask)``.

        Arrays are aligned with :attr:`cell_names`; unplaced cells carry
        ``NaN`` coordinates and ``False`` in the mask.  The gather is cached
        against :attr:`CellInstance.placement_epoch`, so repeated calls with
        no intervening cell movement are free.
        """
        epoch = CellInstance.placement_epoch
        if self._coords is not None and self._coords_epoch == epoch:
            return self._coords
        n = self.num_cells
        cx = np.full(n, np.nan)
        cy = np.full(n, np.nan)
        placed = np.zeros(n, dtype=bool)
        half_h = ROW_HEIGHT / 2.0
        for i, cell in enumerate(self._cells):
            x = cell.x
            if x is None or cell.y is None:
                continue
            cx[i] = x + cell.width / 2.0
            cy[i] = cell.y + half_h
            placed[i] = True
        self._coords = (cx, cy, placed)
        self._coords_epoch = epoch
        return self._coords

    # ------------------------------------------------------------------
    # Net terminals / vectorized HPWL
    # ------------------------------------------------------------------

    def _build_terminals(self) -> None:
        """Flatten net terminals into segment arrays for reduceat HPWL."""
        nets = self._nets
        term_net_counts = np.zeros(self.num_nets, dtype=np.int64)
        term_is_cell: List[bool] = []
        term_ref: List[int] = []
        ports: List = []
        port_pos: Dict[int, int] = {}

        def port_idx(port) -> int:
            key = id(port)
            idx = port_pos.get(key)
            if idx is None:
                idx = len(ports)
                port_pos[key] = idx
                ports.append(port)
            return idx

        for i, net in enumerate(nets):
            count = 0
            if net.driver_pin is not None:
                term_is_cell.append(True)
                term_ref.append(self.cell_index[net.driver_pin.cell.name])
                count += 1
            if net.driver_port is not None:
                term_is_cell.append(False)
                term_ref.append(port_idx(net.driver_port))
                count += 1
            for pin in net.sink_pins:
                term_is_cell.append(True)
                term_ref.append(self.cell_index[pin.cell.name])
                count += 1
            for port in net.sink_ports:
                term_is_cell.append(False)
                term_ref.append(port_idx(port))
                count += 1
            term_net_counts[i] = count

        self._term_is_cell = np.array(term_is_cell, dtype=bool)
        self._term_ref = np.array(term_ref, dtype=np.int64)
        self._term_ports = ports
        offsets = np.zeros(self.num_nets + 1, dtype=np.int64)
        np.cumsum(term_net_counts, out=offsets[1:])
        self._term_offsets = offsets
        self._terminals_built = True

    def net_hpwl_um(self) -> np.ndarray:
        """Half-perimeter wirelength of every net over its placed terminals.

        Matches :meth:`Net.hpwl`: nets with fewer than two placed terminals
        report ``0.0``.
        """
        if not self._terminals_built:
            self._build_terminals()
        cx, cy, placed = self.cell_center_arrays()
        num_ports = len(self._term_ports)
        px = np.full(num_ports, np.nan)
        py = np.full(num_ports, np.nan)
        p_placed = np.zeros(num_ports, dtype=bool)
        for i, port in enumerate(self._term_ports):
            if port.x is not None:
                px[i] = port.x
                py[i] = port.y
                p_placed[i] = True

        is_cell = self._term_is_cell
        ref = self._term_ref
        m = ref.shape[0]
        tx = np.empty(m)
        ty = np.empty(m)
        tvalid = np.empty(m, dtype=bool)
        cell_mask = is_cell
        port_mask = ~is_cell
        tx[cell_mask] = cx[ref[cell_mask]]
        ty[cell_mask] = cy[ref[cell_mask]]
        tvalid[cell_mask] = placed[ref[cell_mask]]
        tx[port_mask] = px[ref[port_mask]]
        ty[port_mask] = py[ref[port_mask]]
        tvalid[port_mask] = p_placed[ref[port_mask]]

        starts = self._term_offsets[:-1]
        counts = np.diff(self._term_offsets)

        hpwl = np.zeros(self.num_nets)
        # Reduce only over nets that actually have terminals: their start
        # offsets are strictly increasing and in range, and consecutive
        # non-empty starts delimit exactly one net's terminal span (empty
        # nets contribute no elements in between), so reduceat segments
        # line up without any index clamping.
        nonempty = counts > 0
        if m and nonempty.any():
            seg_starts = starts[nonempty]
            placed_counts = np.add.reduceat(tvalid.astype(np.int64), seg_starts)

            lo_x = np.where(tvalid, tx, np.inf)
            hi_x = np.where(tvalid, tx, -np.inf)
            lo_y = np.where(tvalid, ty, np.inf)
            hi_y = np.where(tvalid, ty, -np.inf)
            min_x = np.minimum.reduceat(lo_x, seg_starts)
            max_x = np.maximum.reduceat(hi_x, seg_starts)
            min_y = np.minimum.reduceat(lo_y, seg_starts)
            max_y = np.maximum.reduceat(hi_y, seg_starts)

            enough = placed_counts >= 2
            seg_hpwl = np.zeros(seg_starts.shape[0])
            seg_hpwl[enough] = (max_x[enough] - min_x[enough]) + (
                max_y[enough] - min_y[enough]
            )
            hpwl[nonempty] = seg_hpwl
        return hpwl

    def net_length_um(self, fallback_um: float) -> np.ndarray:
        """Estimated routed net lengths (HPWL with the wireload fallback).

        Matches :meth:`DelayModel.net_length_um`: nets whose HPWL is zero
        (fewer than two placed terminals, or coincident terminals) fall back
        to ``fallback_um * max(num_sinks, 1)``.
        """
        length = self.net_hpwl_um()
        fallback = fallback_um * np.maximum(self.num_sinks, 1)
        return np.where(length <= 0.0, fallback, length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledNetlist({self.netlist.name}, cells={self.num_cells}, "
            f"nets={self.num_nets}, levels={len(self.levels)})"
        )
