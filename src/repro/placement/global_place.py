"""Quadratic (analytical) global placement.

The paper's circuits are placed with a commercial tool (Synopsys IC
Compiler).  As a substitute, this module implements the classic quadratic
placement formulation: minimise the weighted sum of squared pin-to-pin
distances, with primary ports fixed on the core boundary and a weak anchor
pulling every cell towards the centre of the region its logical unit was
assigned to by the slicing partition.  The resulting target positions are
then legalised per region (see :mod:`repro.placement.legalize`).

Nets are modelled with the standard clique approximation: a ``p``-pin net
contributes edges of weight ``1 / (p - 1)`` between every pair of its
terminals, which reproduces the net's quadratic star cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..netlist import Netlist
from .floorplan import Floorplan, Rect


@dataclass
class GlobalPlacementResult:
    """Target (un-legalised) positions produced by the quadratic placer.

    Attributes:
        positions: Mapping cell name -> (x, y) target centre in micrometres.
        objective: Final quadratic wirelength objective value.
    """

    positions: Dict[str, Tuple[float, float]]
    objective: float


def assign_port_positions(netlist: Netlist, floorplan: Floorplan) -> None:
    """Spread primary ports evenly around the core boundary.

    Ports are ordered by name and distributed clockwise along the core
    perimeter starting at the lower-left corner.  Positions are stored on
    the ports themselves (``port.x``, ``port.y``).
    """
    ports = sorted(netlist.ports.values(), key=lambda p: p.name)
    if not ports:
        return
    width = floorplan.core_width
    height = floorplan.core_height
    perimeter = 2.0 * (width + height)
    step = perimeter / len(ports)
    for i, port in enumerate(ports):
        distance = (i + 0.5) * step
        if distance < width:
            port.x, port.y = distance, 0.0
        elif distance < width + height:
            port.x, port.y = width, distance - width
        elif distance < 2.0 * width + height:
            port.x, port.y = 2.0 * width + height - distance, height
        else:
            port.x, port.y = 0.0, perimeter - distance


class QuadraticPlacer:
    """Analytical global placer based on a sparse quadratic program.

    Args:
        netlist: The design to place.
        floorplan: Core geometry; ports must already have boundary positions
            (see :func:`assign_port_positions`).
        regions: Optional mapping unit name -> :class:`Rect`; each cell is
            anchored to its unit's region centre.
        anchor_weight: Weight of the region-centre anchor (relative to a
            two-pin net weight of 1.0).
        max_clique_pins: Nets with more terminals than this are modelled by
            connecting each pin to the net's (fixed-point iterated) centroid
            instead of a full clique, to keep the matrix sparse.
    """

    def __init__(
        self,
        netlist: Netlist,
        floorplan: Floorplan,
        regions: Optional[Dict[str, Rect]] = None,
        anchor_weight: float = 0.25,
        max_clique_pins: int = 16,
    ) -> None:
        self.netlist = netlist
        self.floorplan = floorplan
        self.regions = regions or {}
        self.anchor_weight = anchor_weight
        self.max_clique_pins = max_clique_pins

        self._movable = [c for c in netlist.cells.values() if not c.is_filler and not c.fixed]
        self._index = {cell.name: i for i, cell in enumerate(self._movable)}

    # ------------------------------------------------------------------

    def _net_terminals(self, net) -> Tuple[List[int], List[Tuple[float, float]]]:
        """Split a net's terminals into movable cell indices and fixed points."""
        movable: List[int] = []
        fixed: List[Tuple[float, float]] = []
        pins = []
        if net.driver_pin is not None:
            pins.append(net.driver_pin)
        pins.extend(net.sink_pins)
        for pin in pins:
            idx = self._index.get(pin.cell.name)
            if idx is None:
                if pin.cell.is_placed:
                    fixed.append(pin.cell.center)
            else:
                movable.append(idx)
        ports = []
        if net.driver_port is not None:
            ports.append(net.driver_port)
        ports.extend(net.sink_ports)
        for port in ports:
            if port.x is not None and port.y is not None:
                fixed.append((port.x, port.y))
        return movable, fixed

    def _build_system(self):
        """Assemble the Laplacian-like system matrices and RHS vectors.

        Net terminals are gathered per net in Python (the object graph has
        no other access path) but all numeric accumulation — diagonals,
        off-diagonal clique edges and fixed-terminal anchors — is buffered
        into flat index/value lists and applied with ``np.add.at`` /
        ``coo_matrix`` duplicate summation in one shot.
        """
        n = len(self._movable)
        bx = np.zeros(n)
        by = np.zeros(n)

        edge_i: List[int] = []
        edge_j: List[int] = []
        edge_w: List[float] = []
        fixed_i: List[int] = []
        fixed_x: List[float] = []
        fixed_y: List[float] = []
        fixed_w: List[float] = []

        for net in self.netlist.nets.values():
            movable, fixed = self._net_terminals(net)
            num_terms = len(movable) + len(fixed)
            if num_terms < 2:
                continue
            if num_terms <= self.max_clique_pins:
                weight = 1.0 / (num_terms - 1)
                for a in range(len(movable)):
                    for b in range(a + 1, len(movable)):
                        edge_i.append(movable[a])
                        edge_j.append(movable[b])
                        edge_w.append(weight)
                    for fx, fy in fixed:
                        fixed_i.append(movable[a])
                        fixed_x.append(fx)
                        fixed_y.append(fy)
                        fixed_w.append(weight)
            else:
                # Star model: connect every movable pin to the centroid of
                # the fixed pins (or the core centre when there are none).
                weight = 2.0 / num_terms
                if fixed:
                    cx = sum(p[0] for p in fixed) / len(fixed)
                    cy = sum(p[1] for p in fixed) / len(fixed)
                else:
                    cx, cy = self.floorplan.core_rect.center
                for idx in movable:
                    fixed_i.append(idx)
                    fixed_x.append(cx)
                    fixed_y.append(cy)
                    fixed_w.append(weight)

        # Region-centre anchors keep every cell attracted to its unit region
        # and guarantee a non-singular system.
        core_center = self.floorplan.core_rect.center
        for i, cell in enumerate(self._movable):
            region = self.regions.get(cell.unit)
            cx, cy = region.center if region is not None else core_center
            fixed_i.append(i)
            fixed_x.append(cx)
            fixed_y.append(cy)
            fixed_w.append(self.anchor_weight)

        ei = np.asarray(edge_i, dtype=np.int64)
        ej = np.asarray(edge_j, dtype=np.int64)
        ew = np.asarray(edge_w)
        fi = np.asarray(fixed_i, dtype=np.int64)
        fw = np.asarray(fixed_w)

        diag = np.zeros(n)
        np.add.at(diag, ei, ew)
        np.add.at(diag, ej, ew)
        np.add.at(diag, fi, fw)
        np.add.at(bx, fi, fw * np.asarray(fixed_x))
        np.add.at(by, fi, fw * np.asarray(fixed_y))

        laplacian = sp.coo_matrix(
            (
                np.concatenate([-ew, -ew]),
                (np.concatenate([ei, ej]), np.concatenate([ej, ei])),
            ),
            shape=(n, n),
        ).tocsr()
        laplacian = laplacian + sp.diags(diag)
        return laplacian, bx, by

    def _warm_starts(self) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Current cell centres as CG starting vectors, when all are placed.

        On a re-run (an incremental re-place after the netlist or the
        anchors changed) the previous solution is an excellent starting
        guess; on a first placement the cells have no coordinates and the
        solves start cold.
        """
        n = len(self._movable)
        x0 = np.empty(n)
        y0 = np.empty(n)
        for i, cell in enumerate(self._movable):
            if cell.x is None or cell.y is None:
                return None, None
            cx, cy = cell.center
            x0[i] = cx
            y0[i] = cy
        return x0, y0

    def run(self) -> GlobalPlacementResult:
        """Solve the quadratic program and return target cell positions."""
        if not self._movable:
            return GlobalPlacementResult({}, 0.0)
        matrix, bx, by = self._build_system()
        # One preconditioned solver serves both coordinate systems: the
        # matrix is identical for x and y, so the Jacobi preconditioner is
        # built once and the LU fallback (if CG ever stalls) factorises
        # once instead of once per axis.
        solver = _SpdSystemSolver(matrix)
        x0, y0 = self._warm_starts()
        x = solver.solve(bx, x0=x0)
        y = solver.solve(by, x0=y0)

        # Clamp to the core.
        x = np.clip(x, 0.0, self.floorplan.core_width)
        y = np.clip(y, 0.0, self.floorplan.core_height)

        positions = {
            cell.name: (float(x[i]), float(y[i])) for i, cell in enumerate(self._movable)
        }
        objective = float(x @ (matrix @ x) - 2 * bx @ x + y @ (matrix @ y) - 2 * by @ y)
        return GlobalPlacementResult(positions, objective)

    @staticmethod
    def _solve(matrix: sp.csr_matrix, rhs: np.ndarray) -> np.ndarray:
        """Solve one SPD system (kept as the one-shot convenience path)."""
        return _SpdSystemSolver(matrix).solve(rhs)


class _SpdSystemSolver:
    """Jacobi-preconditioned CG for one SPD matrix, reusable across RHS.

    The placer solves the same Laplacian twice (x then y targets); this
    helper builds the diagonal preconditioner once, accepts a warm start
    per right-hand side, and memoises the sparse LU fallback so a stalled
    CG never factorises the matrix more than once.
    """

    def __init__(self, matrix: sp.csr_matrix, rtol: float = 1e-6, maxiter: int = 2000):
        self.matrix = matrix
        self.rtol = rtol
        self.maxiter = maxiter
        diagonal = matrix.diagonal()
        # The anchor terms keep every diagonal entry strictly positive; the
        # guard only protects degenerate hand-built systems.
        safe = np.where(diagonal > 0.0, diagonal, 1.0)
        inverse = 1.0 / safe
        self._preconditioner = spla.LinearOperator(
            matrix.shape, matvec=lambda v: inverse * v
        )
        self._factorized = None

    def solve(self, rhs: np.ndarray, x0: Optional[np.ndarray] = None) -> np.ndarray:
        solution, info = spla.cg(
            self.matrix, rhs, x0=x0, rtol=self.rtol, maxiter=self.maxiter,
            M=self._preconditioner,
        )
        if info != 0:
            if self._factorized is None:
                self._factorized = spla.splu(self.matrix.tocsc())
            solution = self._factorized.solve(rhs)
        return np.asarray(solution, dtype=float)
