"""Deterministic fault injection and retry policy for the execution tiers.

The campaign runner, shard workers, result store, thermal solver, and the
sweep service all call :func:`inject` at named *sites* ("shard.worker",
"solver.multigrid", ...).  With no plan installed the call is a single
attribute load and a ``return`` — effectively free — so the sites stay in
production code permanently.  Activating a :class:`FaultPlan` (directly,
or from the ``REPRO_FAULTS`` environment variable) turns chosen sites into
deterministic failures: raised exceptions, or hard process exits that
simulate a crashed shard worker.

Plans are seedable and match on the *context* each site reports (workload,
strategy, overhead, attempt number, ...), so a chaos test can say "kill the
worker evaluating (eri, 0.10) on its first attempt only" and the run
converges to the fault-free answer after the retry — regardless of thread
or process scheduling.

:class:`RetryPolicy` is the companion knob consumed by the campaign
runner, the shard parent, and the service client: max attempts,
exponential backoff with *deterministic* jitter (hash of a token, not
wall-clock randomness), and retryable-exception classification.

The service tier adds *overload* seams on top of the crash/hang ones:
``service.admit`` (a fault becomes a deterministic throttle rejection),
``service.queue`` (a fault sheds the request at enqueue time), and
``governor.pressure`` (a fault simulates an exhausted memory budget) —
so a seeded plan can drive burst storms and memory pressure without
real load, and :meth:`RetryPolicy.delay_for` closes the loop by
honoring the server's ``retry_after_s`` floor on the client side.
"""

from __future__ import annotations

import builtins
import hashlib
import json
import logging
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Type

logger = logging.getLogger(__name__)

ENV_VAR = "REPRO_FAULTS"

__all__ = [
    "ENV_VAR",
    "InjectedFault",
    "FaultRule",
    "FaultPlan",
    "RetryPolicy",
    "inject",
    "activate",
    "deactivate",
    "get_active",
    "active_plan",
    "plan_from_env",
    "install_env_plan",
]


class InjectedFault(RuntimeError):
    """Raised by :func:`inject` when a fault rule fires at a site."""

    def __init__(self, message: str, site: str = "") -> None:
        super().__init__(message)
        self.site = site


def _resolve_exception(name: str) -> Type[BaseException]:
    candidate = getattr(builtins, name, None)
    if isinstance(candidate, type) and issubclass(candidate, BaseException):
        return candidate
    if name in ("InjectedFault", "", None):
        return InjectedFault
    raise ValueError(f"unknown exception type in fault rule: {name!r}")


@dataclass
class FaultRule:
    """One trigger: fire at ``site`` when ``match`` entries equal the context.

    ``times=None`` fires on every matching call; ``times=N`` fires on the
    first N matching calls *in the process holding the plan* (shard workers
    each receive their own copy, so cross-process determinism should use
    ``match={"attempt": 0, ...}`` instead of counters).  ``kind`` is
    ``"raise"`` (default), ``"exit"`` — calls ``os._exit`` to simulate a
    crashed worker process (no atexit, no finally: the kill-9 analogue
    from inside) — or ``"hang"``: the call sleeps at the seam, simulating
    a stuck component.  A cooperative hang (the default) polls the active
    deadline while sleeping, so a deadline scope converts it into
    :class:`~repro.deadlines.DeadlineExceeded`; ``cooperative=False``
    ignores deadlines and only ``hang_s`` (or SIGKILL from a watchdog)
    ends it.  ``probability`` thins matching calls with a seeded,
    call-count-deterministic coin flip.
    """

    site: str
    kind: str = "raise"
    times: Optional[int] = 1
    match: Dict[str, Any] = field(default_factory=dict)
    exception: str = "InjectedFault"
    probability: float = 1.0
    exit_code: int = 70
    hang_s: Optional[float] = None
    cooperative: bool = True
    fired: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("raise", "exit", "hang"):
            raise ValueError(
                f"fault rule kind must be 'raise', 'exit', or 'hang', got {self.kind!r}"
            )
        if self.hang_s is not None and self.hang_s < 0:
            raise ValueError("hang_s must be >= 0")
        _resolve_exception(self.exception)  # fail fast on bad specs
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("fault rule probability must be in [0, 1]")

    def matches(self, context: Mapping[str, Any]) -> bool:
        if self.times is not None and self.fired >= self.times:
            return False
        for key, expected in self.match.items():
            if key not in context or context[key] != expected:
                return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        spec: Dict[str, Any] = {"site": self.site}
        if self.kind != "raise":
            spec["kind"] = self.kind
        if self.times != 1:
            spec["times"] = self.times
        if self.match:
            spec["match"] = dict(self.match)
        if self.exception != "InjectedFault":
            spec["exception"] = self.exception
        if self.probability != 1.0:
            spec["probability"] = self.probability
        if self.hang_s is not None:
            spec["hang_s"] = self.hang_s
        if not self.cooperative:
            spec["cooperative"] = False
        return spec

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "FaultRule":
        known = {
            "site", "kind", "times", "match", "exception", "probability",
            "exit_code", "hang_s", "cooperative",
        }
        unknown = set(spec) - known
        if unknown:
            raise ValueError(f"unknown fault rule keys: {sorted(unknown)}")
        if "site" not in spec:
            raise ValueError("fault rule needs a 'site'")
        hang_s = spec.get("hang_s")
        return cls(
            site=str(spec["site"]),
            kind=str(spec.get("kind", "raise")),
            times=spec.get("times", 1),
            match=dict(spec.get("match", {})),
            exception=str(spec.get("exception", "InjectedFault")),
            probability=float(spec.get("probability", 1.0)),
            exit_code=int(spec.get("exit_code", 70)),
            hang_s=None if hang_s is None else float(hang_s),
            cooperative=bool(spec.get("cooperative", True)),
        )


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s plus per-site fire/call counters."""

    def __init__(self, rules: Iterable[FaultRule] = (), seed: int = 0) -> None:
        self.rules: List[FaultRule] = list(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self.calls: Dict[str, int] = {}
        self.fires: Dict[str, int] = {}

    # -- builder -----------------------------------------------------------
    def fail(self, site: str, **kwargs: Any) -> "FaultPlan":
        """Append a rule; returns ``self`` for chaining."""
        self.rules.append(FaultRule(site=site, **kwargs))
        return self

    # -- pickling (plans travel to shard worker processes) -----------------
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- trigger machinery -------------------------------------------------
    def _coin(self, site: str, call_index: int, probability: float) -> bool:
        if probability >= 1.0:
            return True
        token = f"{self.seed}:{site}:{call_index}".encode()
        digest = hashlib.blake2b(token, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0**64 < probability

    def on_call(self, site: str, context: Mapping[str, Any]) -> None:
        """Record the call; raise or exit if a rule fires.  Thread-safe."""
        with self._lock:
            call_index = self.calls.get(site, 0)
            self.calls[site] = call_index + 1
            rule = None
            for candidate in self.rules:
                if candidate.site != site or not candidate.matches(context):
                    continue
                if not self._coin(site, call_index, candidate.probability):
                    continue
                candidate.fired += 1
                self.fires[site] = self.fires.get(site, 0) + 1
                rule = candidate
                break
        if rule is None:
            return
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(context.items()))
        message = f"injected fault at {site}" + (f" ({detail})" if detail else "")
        if rule.kind == "exit":
            logger.warning("%s: exiting process with code %d", message, rule.exit_code)
            os._exit(rule.exit_code)
        if rule.kind == "hang":
            logger.warning(
                "%s: hanging (hang_s=%s, cooperative=%s)",
                message, rule.hang_s, rule.cooperative,
            )
            _hang(site, rule)
            return
        exc_type = _resolve_exception(rule.exception)
        if exc_type is InjectedFault:
            raise InjectedFault(message, site=site)
        raise exc_type(message)

    # -- introspection -----------------------------------------------------
    def fired(self, site: str) -> int:
        with self._lock:
            return self.fires.get(site, 0)

    def seen(self, site: str) -> int:
        with self._lock:
            return self.calls.get(site, 0)

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, spec: Mapping[str, Any]) -> "FaultPlan":
        rules = [FaultRule.from_dict(entry) for entry in spec.get("rules", ())]
        return cls(rules=rules, seed=int(spec.get("seed", 0)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, rules={self.rules!r})"


# How often a hanging site wakes to poll its deadline / duration cap.
_HANG_POLL_S = 0.02


def _hang(site: str, rule: FaultRule) -> None:
    """Sleep at a seam; runs *outside* the plan lock.

    A cooperative hang polls the thread's active deadline each wakeup, so
    deadline-scoped callers see :class:`~repro.deadlines.DeadlineExceeded`
    instead of a stall.  A non-cooperative hang ignores deadlines — only
    ``hang_s`` or an external SIGKILL (the shard watchdog) ends it.
    """
    from .deadlines import check_active

    start = time.monotonic()
    while True:
        if rule.cooperative:
            check_active(site)
        if rule.hang_s is not None and time.monotonic() - start >= rule.hang_s:
            return
        time.sleep(_HANG_POLL_S)


# The installed plan.  ``inject`` reads this without locking: installation
# happens before the faulty section runs, and a plain attribute load of a
# module global is atomic under the GIL.
_PLAN: Optional[FaultPlan] = None


def inject(site: str, context: Optional[Mapping[str, Any]] = None) -> None:
    """Fault-injection site.  A no-op unless a plan is active."""
    plan = _PLAN
    if plan is None:
        return
    plan.on_call(site, context or {})


def activate(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` process-wide; returns the previously installed plan."""
    global _PLAN
    previous = _PLAN
    _PLAN = plan
    return previous


def deactivate() -> None:
    activate(None)


def get_active() -> Optional[FaultPlan]:
    return _PLAN


class active_plan:
    """Context manager: install a plan for a block, restore the previous one."""

    def __init__(self, plan: Optional[FaultPlan]) -> None:
        self.plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> Optional[FaultPlan]:
        self._previous = activate(self.plan)
        return self.plan

    def __exit__(self, *exc_info: Any) -> None:
        activate(self._previous)


def plan_from_env(value: Optional[str] = None) -> Optional[FaultPlan]:
    """Parse a :class:`FaultPlan` from ``REPRO_FAULTS`` (or ``value``).

    The format is JSON::

        {"seed": 7, "rules": [
            {"site": "shard.worker", "kind": "exit",
             "match": {"strategy": "eri", "overhead": 0.1, "attempt": 0}},
            {"site": "point.evaluate", "times": null,
             "match": {"strategy": "hw", "overhead": 0.2}}
        ]}

    Returns ``None`` when the variable is unset or blank.
    """
    if value is None:
        value = os.environ.get(ENV_VAR, "")
    value = value.strip()
    if not value:
        return None
    try:
        spec = json.loads(value)
    except json.JSONDecodeError as error:
        raise ValueError(f"{ENV_VAR} is not valid JSON: {error}") from error
    if not isinstance(spec, dict):
        raise ValueError(f"{ENV_VAR} must be a JSON object with a 'rules' list")
    return FaultPlan.from_dict(spec)


def install_env_plan() -> Optional[FaultPlan]:
    """Activate the ``REPRO_FAULTS`` plan, if any.  Returns the plan."""
    plan = plan_from_env()
    if plan is not None:
        logger.warning("fault injection active: %s", plan.to_json())
        activate(plan)
    return plan


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------

_DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    InjectedFault,
    ConnectionError,
    TimeoutError,
    OSError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_attempts`` counts the first try: the default of 1 means "never
    retry".  ``delay_s(attempt, token)`` is pure — the jitter is a hash of
    the token and attempt number, not a wall-clock random draw — so two
    runs of the same campaign back off identically.
    """

    max_attempts: int = 1
    backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 2.0
    jitter_fraction: float = 0.1
    retryable: Tuple[Type[BaseException], ...] = _DEFAULT_RETRYABLE

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")

    def classify(self, error: BaseException) -> bool:
        """True when ``error`` is worth retrying under this policy."""
        return isinstance(error, self.retryable)

    def delay_s(self, attempt: int, token: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based), with jitter."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        base = min(
            self.max_backoff_s,
            self.backoff_s * self.backoff_multiplier ** (attempt - 1),
        )
        if base <= 0.0 or self.jitter_fraction == 0.0:
            return base
        digest = hashlib.blake2b(
            f"{token}:{attempt}".encode(), digest_size=8
        ).digest()
        jitter = int.from_bytes(digest, "big") / 2.0**64
        return base * (1.0 + self.jitter_fraction * jitter)

    def delay_for(
        self,
        attempt: int,
        token: str = "",
        retry_after_s: Optional[float] = None,
    ) -> float:
        """Backoff honoring a server-provided floor.

        The sweep service's 429-style rejections carry a deterministic
        ``retry_after_s`` — the earliest instant the server promises
        capacity is plausible (e.g. its token-bucket refill time).
        Retrying earlier is wasted work, so the delay is the *larger* of
        the policy's own backoff and that floor.
        """
        delay = self.delay_s(attempt, token)
        if retry_after_s is not None and retry_after_s > delay:
            return float(retry_after_s)
        return delay
