"""Acceptance benchmark: the cached sweep is >= 2x faster than the seed.

The seed's ``sweep_overheads`` re-built the thermal grid, re-assembled the
RC network and re-ran SuperLU's generic COLAMD factorisation for every
(strategy, overhead) point.  The campaign-runner work replaced that with a
geometry-keyed :class:`~repro.flow.cache.SolverCache` (the hotspot wrapper
reuses the Default outline at every overhead, so a three-strategy sweep
factorises 2/3 as many matrices) and a symmetric-mode ``MMD_AT_PLUS_A``
ordering that roughly halves each remaining factorisation.

``SolverCache(maxsize=0, method="lu", permc_spec="COLAMD",
symmetric_mode=False)`` reproduces the seed behaviour exactly — a fresh
grid, network and COLAMD-ordered factorisation per point, nothing retained
— so the two timed paths differ only by the optimisations under test (the
cached path additionally auto-selects the multigrid backend at the
40 x 40 quickstart grid).
"""

from __future__ import annotations

import time

import pytest

from repro.bench import scattered_hotspots_workload, small_synthetic_circuit
from repro.flow import ExperimentSetup, SolverCache, sweep_overheads

#: The Figure-6 sweep points used throughout the benchmark harness.
OVERHEADS = (0.08, 0.161, 0.25, 0.322)

#: Acceptance threshold: cached sweep at least this much faster than seed.
MIN_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def quickstart_setup():
    """The quickstart configuration: scaled-down benchmark, 40x40 grid."""
    circuit = small_synthetic_circuit()
    workload = scattered_hotspots_workload(circuit)
    return ExperimentSetup.prepare(circuit, workload)


def test_cached_sweep_at_least_twice_as_fast_as_seed(quickstart_setup):
    setup = quickstart_setup

    def seed_sweep():
        seed_config = SolverCache(
            maxsize=0, method="lu", permc_spec="COLAMD", symmetric_mode=False
        )
        return sweep_overheads(setup, overheads=OVERHEADS, cache=seed_config)

    def cached_sweep():
        cache = SolverCache()
        return sweep_overheads(setup, overheads=OVERHEADS, cache=cache), cache

    start = time.perf_counter()
    seed_outcomes = seed_sweep()
    seed_elapsed = time.perf_counter() - start

    cached_outcomes, cache = None, None
    cached_elapsed = float("inf")
    for _ in range(2):  # best-of-2 to keep scheduler noise out of the ratio
        start = time.perf_counter()
        cached_outcomes, cache = cached_sweep()
        cached_elapsed = min(cached_elapsed, time.perf_counter() - start)

    speedup = seed_elapsed / cached_elapsed
    stats = cache.stats()
    print(f"\nseed sweep {seed_elapsed:.2f}s, cached sweep {cached_elapsed:.2f}s "
          f"-> {speedup:.2f}x (cache: {stats.hits} hits / {stats.misses} "
          f"factorisations over {len(cached_outcomes)} points)")

    # The wrapper shares the Default outline: strictly fewer factorisations
    # than points, with at least one hit per overhead.
    assert stats.misses < len(cached_outcomes)
    assert stats.hits >= len(OVERHEADS)

    # Same physics: the orderings differ only in floating-point rounding.
    assert len(cached_outcomes) == len(seed_outcomes)
    for fast, slow in zip(cached_outcomes, seed_outcomes):
        assert fast.strategy == slow.strategy
        assert fast.actual_overhead == pytest.approx(slow.actual_overhead, rel=1e-9)
        assert fast.temperature_reduction == pytest.approx(
            slow.temperature_reduction, rel=1e-6
        )

    assert speedup >= MIN_SPEEDUP, (
        f"cached sweep only {speedup:.2f}x faster than the seed configuration"
    )
