"""Tests for the standard-cell library model."""

import numpy as np
import pytest

from repro.netlist import CellLibrary, ROW_HEIGHT, SITE_WIDTH
from repro.netlist.library import (
    _fn_fa,
    _fn_ha,
    _fn_mux2,
    _fn_xor,
)


class TestDefaultLibrary:
    def test_contains_basic_gates(self, library):
        for name in ("INV_X1", "NAND2_X1", "NOR2_X1", "XOR2_X1", "FA_X1", "HA_X1", "DFF_X1"):
            assert name in library

    def test_unknown_cell_raises_keyerror(self, library):
        with pytest.raises(KeyError):
            library["NOT_A_CELL"]

    def test_get_returns_none_for_unknown(self, library):
        assert library.get("NOT_A_CELL") is None

    def test_filler_cells_are_zero_power(self, library):
        fillers = library.filler_cells()
        assert fillers, "library must provide filler cells"
        for filler in fillers:
            assert filler.is_filler
            assert filler.leakage_nw == 0.0
            assert filler.internal_energy_fj == 0.0
            assert filler.input_cap_ff == 0.0

    def test_filler_cells_sorted_by_decreasing_width(self, library):
        widths = [f.width_sites for f in library.filler_cells()]
        assert widths == sorted(widths, reverse=True)

    def test_logic_cells_excludes_fillers(self, library):
        assert all(not c.is_filler for c in library.logic_cells())

    def test_sequential_cells(self, library):
        names = {c.name for c in library.sequential_cells()}
        assert "DFF_X1" in names

    def test_len_and_iter(self, library):
        assert len(library) == len(list(library))

    def test_duplicate_cell_rejected(self, library):
        inv = library["INV_X1"]
        with pytest.raises(ValueError):
            library.add(inv)

    def test_duplicate_in_constructor_rejected(self, library):
        inv = library["INV_X1"]
        with pytest.raises(ValueError):
            CellLibrary([inv, inv])


class TestMasterCellGeometry:
    def test_width_matches_sites(self, library):
        inv = library["INV_X1"]
        assert inv.width_um == pytest.approx(inv.width_sites * SITE_WIDTH)

    def test_height_is_row_height(self, library):
        assert library["NAND2_X1"].height_um == pytest.approx(ROW_HEIGHT)

    def test_area(self, library):
        fa = library["FA_X1"]
        assert fa.area_um2 == pytest.approx(fa.width_um * ROW_HEIGHT)

    def test_num_pins(self, library):
        assert library["FA_X1"].num_pins == 5
        assert library["INV_X1"].num_pins == 2

    def test_sequential_flag(self, library):
        assert library["DFF_X1"].is_sequential
        assert not library["NAND2_X1"].is_sequential


class TestLogicFunctions:
    def test_inverter(self, library):
        inv = library["INV_X1"]
        a = np.array([True, False])
        (y,) = inv.evaluate([a])
        assert list(y) == [False, True]

    def test_nand(self, library):
        nand = library["NAND2_X1"]
        a = np.array([True, True, False, False])
        b = np.array([True, False, True, False])
        (y,) = nand.evaluate([a, b])
        assert list(y) == [False, True, True, True]

    def test_xor_function(self):
        a = np.array([True, True, False, False])
        b = np.array([True, False, True, False])
        (y,) = _fn_xor([a, b])
        assert list(y) == [False, True, True, False]

    def test_mux_function(self):
        a = np.array([True, True, False, False])
        b = np.array([False, False, True, True])
        sel = np.array([False, True, False, True])
        (y,) = _fn_mux2([a, b, sel])
        assert list(y) == [True, False, False, True]

    def test_half_adder_truth_table(self):
        a = np.array([False, False, True, True])
        b = np.array([False, True, False, True])
        s, c = _fn_ha([a, b])
        assert list(s) == [False, True, True, False]
        assert list(c) == [False, False, False, True]

    def test_full_adder_truth_table(self):
        values = []
        for a in (0, 1):
            for b in (0, 1):
                for cin in (0, 1):
                    values.append((a, b, cin))
        a = np.array([v[0] for v in values], dtype=bool)
        b = np.array([v[1] for v in values], dtype=bool)
        cin = np.array([v[2] for v in values], dtype=bool)
        s, cout = _fn_fa([a, b, cin])
        for i, (va, vb, vc) in enumerate(values):
            total = va + vb + vc
            assert s[i] == bool(total % 2)
            assert cout[i] == bool(total >= 2)

    def test_filler_has_no_usable_function(self, library):
        filler = library["FILL_X1"]
        # Fillers expose a placeholder function but are never evaluated by
        # the simulator; evaluating with no inputs returns an all-zero array.
        out = filler.evaluate([np.array([True, False])])
        assert not out[0].any()

    def test_and_or_multi_input(self, library):
        nand3 = library["NAND3_X1"]
        a = np.array([True, True])
        b = np.array([True, False])
        c = np.array([True, True])
        (y,) = nand3.evaluate([a, b, c])
        assert list(y) == [False, True]
