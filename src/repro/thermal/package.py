"""Die and package thermal stack.

Section II of the paper: "temperature profile inside a chip is largely
dependent on the package...  In our thermal model, we adopted the thermal
conductivities of different layers from [11].  The z direction is
discretized into 9 layers and on each layer x and y directions are both
discretized into 40 units which results in a grid of 1600 cells."

We model the same structure: a stack of nine material layers (metal/ILD on
top, the active device layer, bulk silicon, die attach and the package
spreader at the bottom), each with its own thickness and thermal
conductivity, plus the boundary that removes heat to the ambient: a
per-area heat-transfer coefficient under the bottom layer feeding a lumped
package-to-ambient resistance, and a weak convection path from the top
surface.  The exact STM package data used by the authors is not public, so
the default values are calibrated to land in the paper's reported range of
"a few degrees to 25 degrees above ambient" for the synthetic benchmark
(see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Layer:
    """One material layer of the thermal stack.

    Attributes:
        name: Human-readable layer name.
        thickness_um: Layer thickness in micrometres.
        conductivity: Thermal conductivity in W/(m*K).
    """

    name: str
    thickness_um: float
    conductivity: float

    @property
    def thickness_m(self) -> float:
        """Thickness in metres."""
        return self.thickness_um * 1e-6

    @property
    def vertical_resistivity(self) -> float:
        """Vertical thermal resistance per unit area, in K*m^2/W."""
        return self.thickness_m / self.conductivity


@dataclass
class Package:
    """The full thermal stack and its boundary conditions.

    Attributes:
        layers: Material layers ordered top (index 0) to bottom.
        active_layer: Index of the layer into which cell power is injected
            (the device layer).
        ambient_celsius: Ambient temperature.
        bottom_htc: Effective heat-transfer coefficient (W/(m^2*K)) from the
            bottom layer to the package node — the per-area part of the heat
            removal path.
        top_htc: Effective heat-transfer coefficient from the top layer to
            ambient (mold compound / natural convection), usually small.
        lateral_htc: Effective heat-transfer coefficient from the lateral
            die boundary to ambient.  The paper's model connects boundary
            thermal cells to ambient voltage sources; a finite coefficient
            here reproduces that edge heat path (and with it the lateral
            temperature gradients that make hotspot-targeted whitespace more
            effective than blind spreading) without turning the die edge
            into a perfect heat sink.
        package_resistance: Lumped package-node-to-ambient thermal
            resistance in K/W.  Because it is independent of die area, it
            makes peak-temperature reductions sub-linear in the area
            overhead, as observed in the paper's Table I.
    """

    layers: List[Layer]
    active_layer: int
    ambient_celsius: float = 25.0
    bottom_htc: float = 3.0e4
    top_htc: float = 1.0e3
    lateral_htc: float = 500.0
    package_resistance: float = 150.0

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("package requires at least one layer")
        if not 0 <= self.active_layer < len(self.layers):
            raise ValueError(
                f"active_layer {self.active_layer} out of range for {len(self.layers)} layers"
            )
        if self.bottom_htc <= 0.0:
            raise ValueError("bottom_htc must be positive")
        if self.package_resistance < 0.0:
            raise ValueError("package_resistance must be non-negative")

    @property
    def num_layers(self) -> int:
        """Number of material layers (the paper uses 9)."""
        return len(self.layers)

    @property
    def total_thickness_um(self) -> float:
        """Total stack thickness in micrometres."""
        return sum(layer.thickness_um for layer in self.layers)

    def vertical_resistance_per_area(self) -> float:
        """One-dimensional vertical resistance per unit area, K*m^2/W.

        The sum of the layer resistivities below the active layer plus the
        bottom heat-transfer coefficient; useful for sanity checks and for
        the analytical estimates in tests.
        """
        below = sum(
            layer.vertical_resistivity for layer in self.layers[self.active_layer:]
        )
        return below + 1.0 / self.bottom_htc

    def spreading_length_m(self) -> float:
        """Characteristic lateral heat-spreading length in metres.

        ``sqrt(k_eff * t * r_v)`` where ``k_eff`` and ``t`` are the
        thickness-weighted conductivity and total thickness of the stack
        below the active layer, and ``r_v`` the vertical resistance per
        area.  Hotspots smaller than this length are largely smoothed out,
        which is why the paper's thermal maps show only a few percent of
        lateral variation.
        """
        below = self.layers[self.active_layer:]
        thickness = sum(layer.thickness_m for layer in below)
        if thickness <= 0.0:
            return 0.0
        k_eff = sum(layer.conductivity * layer.thickness_m for layer in below) / thickness
        return (k_eff * thickness * self.vertical_resistance_per_area()) ** 0.5


def default_package(ambient_celsius: float = 25.0) -> Package:
    """The default nine-layer stack used throughout the reproduction.

    Layers, top to bottom: mold/passivation interface, two metal/ILD
    layers, the active device layer, a thinned silicon body, the backside
    interface, die attach and the package substrate.  The bulk of the heat
    removal path (heat spreader and heat sink) is modelled as the per-area
    ``bottom_htc`` plus the lumped ``package_resistance``, which keeps the
    lateral heat-spreading length comparable to the die size; this is the
    calibration that reproduces the paper's observation that the thermal
    map correlates strongly with the power map (Figure 5) and that
    hotspot-targeted whitespace beats blind spreading (Figure 6, Table I).
    See EXPERIMENTS.md for the calibration discussion.
    """
    layers = [
        Layer("mold_interface", 10.0, 1.0),
        Layer("metal_ild_upper", 5.0, 1.2),
        Layer("metal_ild_lower", 4.0, 3.0),
        Layer("active_silicon", 2.0, 120.0),
        Layer("silicon_body", 2.0, 100.0),
        Layer("backside_interface", 3.0, 2.0),
        Layer("die_attach", 8.0, 2.0),
        Layer("substrate_core", 30.0, 2.0),
        Layer("substrate_lower", 30.0, 2.0),
    ]
    return Package(
        layers=layers,
        active_layer=3,
        ambient_celsius=ambient_celsius,
        bottom_htc=1.0e5,
        top_htc=600.0,
        lateral_htc=200.0,
        package_resistance=80.0,
    )


def low_cost_package(ambient_celsius: float = 25.0) -> Package:
    """A cheaper package with poorer heat removal (higher temperatures).

    Provided for the "different cooling mechanisms with different heat
    removal capabilities" discussion in Section II; used by the ablation
    benchmarks.
    """
    base = default_package(ambient_celsius)
    return Package(
        layers=base.layers,
        active_layer=base.active_layer,
        ambient_celsius=ambient_celsius,
        bottom_htc=8.0e3,
        top_htc=5.0e2,
        lateral_htc=200.0,
        package_resistance=600.0,
    )


def high_performance_package(ambient_celsius: float = 25.0) -> Package:
    """An aggressive cooling solution (lower temperatures, flatter profile)."""
    base = default_package(ambient_celsius)
    return Package(
        layers=base.layers,
        active_layer=base.active_layer,
        ambient_celsius=ambient_celsius,
        bottom_htc=1.0e5,
        top_htc=2.0e3,
        lateral_htc=1000.0,
        package_resistance=50.0,
    )
