"""Detailed placement improvement.

A lightweight detailed-placement pass in the spirit of what commercial
tools run after legalization: adjacent cells within a row are swapped when
the swap reduces total half-perimeter wirelength.  The pass preserves
legality (cells stay in the same row span) and is intentionally local so
that the post-placement thermal techniques remain the dominant effect on
the layout.
"""

from __future__ import annotations


from ..netlist import CellInstance
from .placement import Placement, Row


def _cell_hpwl(cell: CellInstance) -> float:
    """Sum of HPWL over all nets attached to ``cell``."""
    total = 0.0
    seen = set()
    for pin in cell.pins.values():
        net = pin.net
        if net is None or net.name in seen:
            continue
        seen.add(net.name)
        total += net.hpwl()
    return total


def _swap_positions(row: Row, a: CellInstance, b: CellInstance) -> None:
    """Swap two adjacent cells ``a`` (left) and ``b`` (right) within a row."""
    new_b_x = a.x
    new_a_x = a.x + b.width
    b.place(new_b_x, row.y, row.index)
    a.place(new_a_x, row.y, row.index)
    row.sort()


def improve_row(placement: Placement, row: Row) -> int:
    """One pass of adjacent-pair swaps over a row.

    Returns:
        The number of swaps applied.
    """
    row.sort()
    swaps = 0
    i = 0
    while i + 1 < len(row.cells):
        left = row.cells[i]
        right = row.cells[i + 1]
        # Only swap abutting or near-abutting neighbours so whitespace
        # created on purpose (wrappers, spread rows) is not disturbed.
        if right.x - (left.x + left.width) > placement.floorplan.site_width:
            i += 1
            continue
        before = _cell_hpwl(left) + _cell_hpwl(right)
        _swap_positions(row, left, right)
        after = _cell_hpwl(left) + _cell_hpwl(right)
        if after >= before - 1e-9:
            # Revert: swap back (right is now left of left).
            _swap_positions(row, right, left)
        else:
            swaps += 1
        i += 1
    return swaps


def improve_placement(placement: Placement, max_passes: int = 2) -> int:
    """Run adjacent-swap improvement over every row.

    Args:
        placement: Placement to improve in place.
        max_passes: Maximum number of full sweeps over all rows; the loop
            stops early when a sweep applies no swap.

    Returns:
        Total number of swaps applied.
    """
    total = 0
    for _ in range(max_passes):
        swaps = 0
        for row in placement.rows:
            swaps += improve_row(placement, row)
        total += swaps
        if swaps == 0:
            break
    return total
