"""Tests for structural Verilog and DEF-like placement I/O."""

import pytest

from repro.netlist import (
    read_def,
    read_verilog,
    write_def,
    write_verilog,
)


class TestVerilogRoundTrip:
    def test_write_contains_module_and_instances(self, tiny_netlist):
        text = write_verilog(tiny_netlist)
        assert "module tiny" in text
        assert "NAND2_X1 u3" in text
        assert "endmodule" in text

    def test_round_trip_preserves_structure(self, tiny_netlist, library):
        text = write_verilog(tiny_netlist)
        parsed = read_verilog(text, library)
        assert parsed.num_cells == tiny_netlist.num_cells
        assert set(parsed.ports) == set(tiny_netlist.ports)
        assert parsed.check() == []
        # Connectivity: the NAND must still drive the DFF.
        nand_out = parsed.cells["u3"].pin("Y").net
        assert nand_out is not None
        assert any(pin.cell.name == "u4" for pin in nand_out.sink_pins)

    def test_round_trip_of_generated_unit(self, library):
        from repro.bench import ripple_carry_adder

        adder = ripple_carry_adder(4, library=library)
        parsed = read_verilog(write_verilog(adder), library)
        assert parsed.num_cells == adder.num_cells
        assert parsed.check() == []

    def test_unknown_master_raises(self, library):
        text = "module m (a);\n input a;\n BOGUS_X1 u0 (.A(a));\nendmodule\n"
        with pytest.raises(ValueError, match="unknown master"):
            read_verilog(text, library)

    def test_missing_module_raises(self, library):
        with pytest.raises(ValueError, match="module"):
            read_verilog("wire x;", library)


class TestDefRoundTrip:
    def test_round_trip_preserves_positions(self, tiny_netlist):
        for i, cell in enumerate(tiny_netlist.cells.values()):
            cell.place(i * 2.0, 1.8, 1)
        text = write_def(tiny_netlist, die_width=50.0, die_height=50.0,
                         num_rows=10, row_height=1.8)
        clone = tiny_netlist.copy()
        for cell in clone.cells.values():
            cell.x = cell.y = cell.row = None
        die = read_def(text, clone)
        assert die.num_rows == 10
        assert die.width == pytest.approx(50.0)
        for name, cell in tiny_netlist.cells.items():
            assert clone.cells[name].x == pytest.approx(cell.x)
            assert clone.cells[name].row == cell.row
        for cell in tiny_netlist.cells.values():
            cell.x = cell.y = cell.row = None

    def test_unknown_instances_are_created(self, tiny_netlist, library):
        text = (
            "DESIGN tiny ;\n"
            "DIEAREA ( 0 0 ) ( 10 10 ) ;\n"
            "ROWS 5 HEIGHT 1.8 ;\n"
            "COMPONENTS 1 ;\n"
            "  - FILLER_99 FILL_X2 + PLACED ( 1.0 0.0 ) ROW 0 ;\n"
            "END COMPONENTS\nEND DESIGN\n"
        )
        clone = tiny_netlist.copy()
        read_def(text, clone)
        assert "FILLER_99" in clone.cells
        assert clone.cells["FILLER_99"].is_filler

    def test_malformed_header_raises(self, tiny_netlist):
        with pytest.raises(ValueError, match="malformed"):
            read_def("COMPONENTS 0 ;", tiny_netlist.copy())


class TestNetGeometry:
    def test_hpwl_zero_when_unplaced(self, tiny_netlist):
        assert tiny_netlist.nets["n3"].hpwl() == 0.0

    def test_hpwl_of_two_point_net(self, tiny_netlist):
        u3 = tiny_netlist.cells["u3"]
        u4 = tiny_netlist.cells["u4"]
        u3.place(0.0, 0.0, 0)
        u4.place(10.0, 3.6, 2)
        net = tiny_netlist.nets["n3"]
        expected_dx = abs(u4.center[0] - u3.center[0])
        expected_dy = abs(u4.center[1] - u3.center[1])
        assert net.hpwl() == pytest.approx(expected_dx + expected_dy)
        for cell in (u3, u4):
            cell.x = cell.y = cell.row = None
