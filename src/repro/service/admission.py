"""Admission control for the sweep daemon: identity, quotas, backpressure.

The server's three-tier request path (store hit, in-flight join, batched
solve) assumes work actually *fits*: PR 7's daemon accepted unbounded
concurrent sweeps from anonymous clients, so one greedy 10k-point request
could monopolise the batch window and OOM the process.  This module is the
front door that makes load survivable:

* :class:`AdmissionController` — optional shared-secret auth, per-client
  identity, and per-client quotas (requests/sec token bucket, max points
  per request, max in-flight points).  Rejections are structured
  429-style :class:`AdmissionError` values carrying a deterministic
  ``retry_after_s`` the client honours (see
  :meth:`~repro.faults.RetryPolicy.delay_for`).
* :class:`FairTaskQueue` — the gather-window queue, ordered round-robin
  across clients so a 3-point sweep interleaves with a 10k-point one
  instead of queueing behind it, with oldest-deadline-first shedding when
  the in-flight bound is hit.

Fault seam: ``service.admit`` fires once per admission check, so a seeded
:class:`~repro.faults.FaultPlan` can drive burst storms deterministically
(an injected fault is converted into a throttle rejection, never an
unstructured error).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from ..faults import InjectedFault, inject

#: Rejection codes a client may retry after ``retry_after_s``; everything
#: else (bad token, oversized request spec) will fail the same way again.
RETRYABLE_CODES = frozenset({"throttled", "quota", "overloaded", "shed", "pressure"})


class AdmissionError(Exception):
    """A structured 429-style rejection from the service front door.

    Attributes:
        code: Machine-readable reason — ``auth``, ``too_many_points``,
            ``throttled``, ``quota``, ``overloaded``, ``shed``,
            ``pressure``, or ``payload_too_large``.
        retry_after_s: When set, the server promises capacity is plausible
            after this many seconds; clients must wait at least this long
            before retrying (the retry_after contract).
        retryable: Whether retrying the identical request can succeed.
    """

    def __init__(
        self,
        code: str,
        message: str,
        retry_after_s: Optional[float] = None,
        retryable: Optional[bool] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after_s = retry_after_s
        self.retryable = retryable if retryable is not None else code in RETRYABLE_CODES

    def to_response(self) -> Dict[str, object]:
        """The wire form: an error object the protocol returns verbatim."""
        response: Dict[str, object] = {
            "ok": False,
            "error": str(self),
            "code": self.code,
            "retryable": self.retryable,
        }
        if self.retry_after_s is not None:
            response["retry_after_s"] = round(float(self.retry_after_s), 6)
        return response


@dataclass(frozen=True)
class ClientQuota:
    """Per-client limits enforced by :class:`AdmissionController`.

    All fields are optional; ``None`` disables that limit, so
    ``ClientQuota()`` admits everything (the PR 7 behaviour).

    Args:
        max_inflight_points: Points one client may have in flight across
            its concurrent requests.
        max_points_per_request: Grid-size cap per sweep request (larger
            sweeps must be split client-side; not retryable).
        requests_per_s: Sustained request rate per client, enforced by a
            token bucket.
        burst: Bucket depth — how many requests may arrive back-to-back
            before the rate limit bites (default: ``ceil(requests_per_s)``,
            at least 1).
    """

    max_inflight_points: Optional[int] = None
    max_points_per_request: Optional[int] = None
    requests_per_s: Optional[float] = None
    burst: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("max_inflight_points", "max_points_per_request", "burst"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")
        if self.requests_per_s is not None and self.requests_per_s <= 0:
            raise ValueError(
                f"requests_per_s must be > 0, got {self.requests_per_s}"
            )
        if self.burst is not None and self.requests_per_s is None:
            raise ValueError("burst requires requests_per_s")

    @property
    def bucket_size(self) -> Optional[float]:
        if self.requests_per_s is None:
            return None
        if self.burst is not None:
            return float(self.burst)
        return float(max(1, int(-(-self.requests_per_s // 1))))

    @classmethod
    def parse(cls, text: str) -> "ClientQuota":
        """Parse the CLI spec ``key=value[,key=value...]``.

        Keys match the field names (``rate`` is accepted as shorthand
        for ``requests_per_s``); e.g.
        ``"rate=5,max_inflight_points=64,burst=10"``.

        Raises:
            ValueError: Unknown key, malformed pair, or non-positive value.
        """
        fields = {
            "max_inflight_points": int,
            "max_points_per_request": int,
            "requests_per_s": float,
            "burst": int,
        }
        aliases = {"rate": "requests_per_s"}
        values: Dict[str, object] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad quota entry {part!r}; expected key=value"
                )
            key, _, raw = part.partition("=")
            key = aliases.get(key.strip(), key.strip())
            if key not in fields:
                raise ValueError(
                    f"unknown quota key {key!r}; "
                    f"expected one of {sorted(fields)}"
                )
            try:
                values[key] = fields[key](raw.strip())
            except ValueError:
                raise ValueError(
                    f"bad quota value for {key}: {raw.strip()!r}"
                ) from None
        if not values:
            raise ValueError("empty quota spec")
        return cls(**values)  # type: ignore[arg-type]


class _ClientState:
    """Mutable per-client accounting (guarded by the controller lock)."""

    __slots__ = (
        "inflight_points", "tokens", "refilled_at",
        "requests", "admitted", "throttled", "rejected", "shed",
    )

    def __init__(self, bucket_size: Optional[float], now: float) -> None:
        self.inflight_points = 0
        self.tokens = bucket_size  # None when no rate limit
        self.refilled_at = now
        self.requests = 0
        self.admitted = 0
        self.throttled = 0
        self.rejected = 0
        self.shed = 0


class AdmissionController:
    """Front-door policy for :class:`~repro.service.server.SweepServer`.

    Thread-safe; every public method may be called from concurrent
    request-handler threads.  With no quota and no token configured the
    controller is a near-free pass-through (one lock round-trip and a
    fault-seam probe per request).

    Args:
        quota: Per-client limits applied uniformly to every client
            identity; ``None`` admits everything.
        auth_token: Shared secret; when set, protected ops must carry a
            matching ``token`` field.  Identity (the ``client`` field)
            remains self-reported — the token gates admission, it does
            not prove who a client is.
        retry_after_s: Baseline retry hint attached to quota/overload
            rejections that have no better estimate (rate-limit
            rejections compute the exact token-bucket refill time).
        clock: Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        quota: Optional[ClientQuota] = None,
        auth_token: Optional[str] = None,
        retry_after_s: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if retry_after_s <= 0:
            raise ValueError(f"retry_after_s must be > 0, got {retry_after_s}")
        self.quota = quota
        self.auth_token = auth_token
        self.retry_after_s = retry_after_s
        self._clock = clock
        self._lock = threading.Lock()
        self._clients: Dict[str, _ClientState] = {}
        self.admitted_total = 0
        self.throttled_total = 0
        self.rejected_total = 0
        self.shed_total = 0

    # -- identity and auth ---------------------------------------------------

    def authenticate(self, payload: Dict[str, object], client: str) -> None:
        """Check the shared secret (no-op when the server has none).

        Raises:
            AdmissionError: ``code="auth"`` (not retryable) on a missing
                or wrong token.
        """
        if self.auth_token is None:
            return
        token = payload.get("token")
        if isinstance(token, str) and _constant_time_eq(token, self.auth_token):
            return
        self.note_rejected(client)
        raise AdmissionError(
            "auth",
            "bad or missing auth token (pass submit --token / "
            "SweepClient(token=...))",
            retryable=False,
        )

    # -- quota admission -----------------------------------------------------

    def admit(self, client: str, num_points: int) -> None:
        """Admit ``num_points`` for ``client`` or raise a structured rejection.

        On success the client's in-flight count is charged; the caller
        must balance every successful ``admit`` with :meth:`release`.
        """
        now = self._clock()
        with self._lock:
            state = self._state(client, now)
            state.requests += 1
            try:
                # Chaos seam: a seeded plan converts a fault here into a
                # deterministic throttle, driving burst storms on demand.
                inject("service.admit", {
                    "client": client, "num_points": num_points,
                })
            except InjectedFault as fault:
                state.throttled += 1
                self.throttled_total += 1
                raise AdmissionError(
                    "throttled",
                    f"request throttled (fault injection: {fault})",
                    retry_after_s=self.retry_after_s,
                ) from None
            quota = self.quota
            if quota is None:
                state.admitted += 1
                self.admitted_total += 1
                state.inflight_points += num_points
                return
            if (
                quota.max_points_per_request is not None
                and num_points > quota.max_points_per_request
            ):
                state.rejected += 1
                self.rejected_total += 1
                raise AdmissionError(
                    "too_many_points",
                    f"request asks for {num_points} points; per-request "
                    f"quota is {quota.max_points_per_request} "
                    f"(split the sweep)",
                    retryable=False,
                )
            wait = self._take_token(state, now)
            if wait is not None:
                state.throttled += 1
                self.throttled_total += 1
                raise AdmissionError(
                    "throttled",
                    f"client {client!r} exceeds {quota.requests_per_s}/s",
                    retry_after_s=wait,
                )
            if (
                quota.max_inflight_points is not None
                and state.inflight_points + num_points
                > quota.max_inflight_points
            ):
                state.throttled += 1
                self.throttled_total += 1
                raise AdmissionError(
                    "quota",
                    f"client {client!r} has {state.inflight_points} "
                    f"point(s) in flight; admitting {num_points} more "
                    f"would exceed its quota of "
                    f"{quota.max_inflight_points}",
                    retry_after_s=self.retry_after_s,
                )
            state.admitted += 1
            self.admitted_total += 1
            state.inflight_points += num_points

    def release(self, client: str, num_points: int) -> None:
        """Return in-flight credit charged by a successful :meth:`admit`."""
        with self._lock:
            state = self._clients.get(client)
            if state is not None:
                state.inflight_points = max(0, state.inflight_points - num_points)

    def _state(self, client: str, now: float) -> _ClientState:
        state = self._clients.get(client)
        if state is None:
            bucket = self.quota.bucket_size if self.quota else None
            state = _ClientState(bucket, now)
            self._clients[client] = state
        return state

    def _take_token(self, state: _ClientState, now: float) -> Optional[float]:
        """Take one rate token; return the deterministic wait when empty.

        The returned wait is exactly the token-bucket refill time
        ``(1 - tokens) / rate`` — the server-side half of the
        retry_after contract.
        """
        quota = self.quota
        if quota is None or quota.requests_per_s is None:
            return None
        bucket = quota.bucket_size or 1.0
        elapsed = max(0.0, now - state.refilled_at)
        tokens = state.tokens if state.tokens is not None else bucket
        tokens = min(bucket, tokens + elapsed * quota.requests_per_s)
        state.refilled_at = now
        if tokens >= 1.0:
            state.tokens = tokens - 1.0
            return None
        state.tokens = tokens
        return (1.0 - tokens) / quota.requests_per_s

    # -- shed/reject accounting (server-side capacity decisions) -------------

    def note_shed(self, client: str, count: int = 1) -> None:
        """Record work dropped for capacity (queue full, memory pressure)."""
        with self._lock:
            self._state(client, self._clock()).shed += count
            self.shed_total += count

    def note_rejected(self, client: str, count: int = 1) -> None:
        """Record an outright refusal (auth failure, malformed request)."""
        with self._lock:
            self._state(client, self._clock()).rejected += count
            self.rejected_total += count

    # -- observability -------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "admitted_total": self.admitted_total,
                "throttled_total": self.throttled_total,
                "rejected_total": self.rejected_total,
                "shed_total": self.shed_total,
            }

    def client_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-client usage for ``health()``: in-flight points + counters."""
        with self._lock:
            return {
                name: {
                    "inflight_points": state.inflight_points,
                    "requests": state.requests,
                    "admitted": state.admitted,
                    "throttled": state.throttled,
                    "rejected": state.rejected,
                    "shed": state.shed,
                }
                for name, state in sorted(self._clients.items())
            }


def _constant_time_eq(a: str, b: str) -> bool:
    import hmac

    return hmac.compare_digest(a.encode(), b.encode())


class FairTaskQueue:
    """Gather-window queue with per-client fairness and deadline shedding.

    Items need two attributes: ``client`` (the identity that enqueued
    them) and ``deadline`` (a monotonic instant after which their waiter
    has given up).  :meth:`get` serves clients round-robin — each call
    pops from the next client that has queued work — so every client's
    head-of-line item is at most ``#clients`` pops away regardless of how
    deep any one client's backlog is.  That is the anti-starvation half
    of the backpressure story; :meth:`shed_before` is the load-shedding
    half: when the in-flight bound is hit, the items closest to missing
    their deadline anyway are dropped first, and only in favour of work
    that would outlive them (so two retrying clients cannot shed each
    other forever — deadlines order displacement totally).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._queues: "OrderedDict[str, Deque[object]]" = OrderedDict()
        self._size = 0

    def put(self, item: object) -> None:
        client = getattr(item, "client", "anonymous")
        with self._cond:
            bucket = self._queues.get(client)
            if bucket is None:
                bucket = deque()
                self._queues[client] = bucket
            bucket.append(item)
            self._size += 1
            self._cond.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[object]:
        """Pop the next item round-robin across clients (None on timeout)."""
        with self._cond:
            if self._size == 0 and not self._cond.wait_for(
                lambda: self._size > 0, timeout=timeout
            ):
                return None
            client, bucket = next(iter(self._queues.items()))
            item = bucket.popleft()
            self._size -= 1
            if bucket:
                self._queues.move_to_end(client)
            else:
                del self._queues[client]
            return item

    def shed_before(self, deadline: float, count: int) -> List[object]:
        """Remove up to ``count`` queued items with the earliest deadlines.

        Only items whose deadline is strictly earlier than ``deadline``
        are eligible — later-deadline work never displaces work that
        would outlive it.  Returns the shed items, earliest first; the
        caller owns failing their futures.
        """
        if count <= 0:
            return []
        with self._cond:
            candidates = [
                item
                for bucket in self._queues.values()
                for item in bucket
                if getattr(item, "deadline", float("inf")) < deadline
            ]
            candidates.sort(key=lambda item: item.deadline)  # type: ignore[attr-defined]
            victims = candidates[:count]
            for item in victims:
                client = getattr(item, "client", "anonymous")
                bucket = self._queues.get(client)
                if bucket is None:
                    continue
                try:
                    bucket.remove(item)
                except ValueError:
                    continue
                self._size -= 1
                if not bucket:
                    del self._queues[client]
            return victims

    def __len__(self) -> int:
        with self._cond:
            return self._size


__all__ = [
    "AdmissionController",
    "AdmissionError",
    "ClientQuota",
    "FairTaskQueue",
    "RETRYABLE_CODES",
]
