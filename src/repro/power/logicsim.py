"""Vectorized gate-level logic simulation.

Substitutes for the Synopsys VCS logic-simulation step of the paper's flow.
The simulator is a synchronous, zero-delay, cycle-based simulator: on every
clock cycle it applies the next primary-input vector, evaluates the
levelized combinational logic (all values are NumPy boolean arrays over a
batch of independent streams, so one pass evaluates many random streams at
once), and then updates every flip-flop with the value at its D pin.

The output is a per-net switching-activity annotation (toggles per cycle
and static probability) which the power model consumes — the same
information a SAIF file would carry in the commercial flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..netlist import CellInstance, Netlist
from .vectors import VectorSet


@dataclass
class SimulationResult:
    """Outcome of a cycle-based simulation.

    Attributes:
        toggle_counts: Mapping net name -> total number of observed
            transitions summed over all streams.
        one_counts: Mapping net name -> total number of cycles (summed over
            streams) the net was logic 1.
        num_cycles: Number of simulated cycles (after warm-up).
        batch_size: Number of parallel streams.
        final_values: Net name -> boolean array with the last cycle's values
            (useful for functional checks in tests).
    """

    toggle_counts: Dict[str, int]
    one_counts: Dict[str, int]
    num_cycles: int
    batch_size: int
    final_values: Dict[str, np.ndarray]

    @property
    def total_samples(self) -> int:
        """Total number of per-net observations (cycles x streams)."""
        return self.num_cycles * self.batch_size

    def toggle_rate(self, net: str) -> float:
        """Average toggles per cycle for ``net``."""
        if self.num_cycles <= 1:
            return 0.0
        return self.toggle_counts.get(net, 0) / float((self.num_cycles - 1) * self.batch_size)

    def static_probability(self, net: str) -> float:
        """Fraction of samples in which ``net`` was logic 1."""
        if self.total_samples == 0:
            return 0.0
        return self.one_counts.get(net, 0) / float(self.total_samples)


class LogicSimulator:
    """Cycle-based, vectorized logic simulator for a gate-level netlist.

    Args:
        netlist: The design to simulate.  The combinational portion must be
            acyclic (cycles through flip-flops are fine).
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self._order: List[CellInstance] = netlist.levelize()
        self._sequential: List[CellInstance] = netlist.sequential_cells()

    # ------------------------------------------------------------------

    def simulate(self, vectors: VectorSet, warmup_cycles: int = 2) -> SimulationResult:
        """Run the simulation over a :class:`VectorSet`.

        Args:
            vectors: Input stimulus; must cover every primary input.
            warmup_cycles: Initial cycles excluded from activity statistics
                (lets flip-flop state settle).

        Returns:
            A :class:`SimulationResult` with per-net activity counts.

        Raises:
            KeyError: If a primary input has no stimulus.
        """
        num_cycles = vectors.num_cycles
        batch = vectors.batch_size
        warmup_cycles = min(warmup_cycles, max(num_cycles - 2, 0))

        # Flip-flop state: Q values, initialised to 0.
        state: Dict[str, np.ndarray] = {
            ff.name: np.zeros(batch, dtype=bool) for ff in self._sequential
        }

        toggle_counts: Dict[str, int] = {}
        one_counts: Dict[str, int] = {}
        previous: Dict[str, np.ndarray] = {}
        values: Dict[str, np.ndarray] = {}

        for cycle in range(num_cycles):
            values = self._evaluate_cycle(vectors, state, cycle, batch)

            if cycle >= warmup_cycles:
                for net_name, arr in values.items():
                    ones = int(np.count_nonzero(arr))
                    one_counts[net_name] = one_counts.get(net_name, 0) + ones
                    prev = previous.get(net_name)
                    if prev is not None:
                        toggles = int(np.count_nonzero(arr != prev))
                        toggle_counts[net_name] = toggle_counts.get(net_name, 0) + toggles
                previous = values

            # Clock edge: capture D into Q for the next cycle.
            for ff in self._sequential:
                d_pin = ff.input_pins[0]
                if d_pin.net is not None and d_pin.net.name in values:
                    state[ff.name] = values[d_pin.net.name].copy()

        counted_cycles = num_cycles - warmup_cycles
        return SimulationResult(
            toggle_counts=toggle_counts,
            one_counts=one_counts,
            num_cycles=counted_cycles,
            batch_size=batch,
            final_values=values,
        )

    # ------------------------------------------------------------------

    def _evaluate_cycle(
        self,
        vectors: VectorSet,
        state: Dict[str, np.ndarray],
        cycle: int,
        batch: int,
    ) -> Dict[str, np.ndarray]:
        """Evaluate all net values for one clock cycle."""
        values: Dict[str, np.ndarray] = {}

        # Primary inputs.
        for port in self.netlist.primary_inputs:
            stream = vectors.values.get(port.name)
            if stream is None:
                raise KeyError(f"no stimulus for primary input {port.name}")
            if port.net is not None:
                values[port.net.name] = stream[cycle]

        # Flip-flop outputs (current state).
        for ff in self._sequential:
            q_pin = ff.output_pins[0]
            if q_pin.net is not None:
                values[q_pin.net.name] = state[ff.name]

        # Combinational logic in topological order.
        zeros = np.zeros(batch, dtype=bool)
        for inst in self._order:
            inputs = []
            for pin in inst.input_pins:
                if pin.net is None:
                    inputs.append(zeros)
                else:
                    inputs.append(values.get(pin.net.name, zeros))
            outputs = inst.master.evaluate(inputs)
            for pin, arr in zip(inst.output_pins, outputs):
                if pin.net is not None:
                    values[pin.net.name] = arr

        return values

    # ------------------------------------------------------------------

    def evaluate_combinational(
        self, input_values: Dict[str, np.ndarray], register_values: Optional[Dict[str, np.ndarray]] = None
    ) -> Dict[str, np.ndarray]:
        """Single combinational evaluation with explicit input values.

        Used by functional tests (e.g. checking that a generated multiplier
        really multiplies) without the cycle/stimulus machinery.

        Args:
            input_values: Mapping primary-input name -> boolean array.
            register_values: Optional mapping flip-flop instance name ->
                boolean array of current Q values (default all zero).

        Returns:
            Mapping net name -> boolean array of evaluated values.
        """
        batch = len(next(iter(input_values.values())))
        state = {
            ff.name: (register_values or {}).get(ff.name, np.zeros(batch, dtype=bool))
            for ff in self._sequential
        }

        class _SingleCycle:
            def __init__(self, values: Dict[str, np.ndarray]) -> None:
                self.values = {k: np.asarray(v, dtype=bool)[np.newaxis, :] for k, v in values.items()}
                self.num_cycles = 1
                self.batch_size = batch

        vectors = _SingleCycle(input_values)
        return self._evaluate_cycle(vectors, state, 0, batch)
