"""Chaos suite: deterministic fault injection across every execution tier.

A seeded :class:`~repro.faults.FaultPlan` is pushed through the serial,
threaded, process-sharded and served sweep paths.  The invariants under
test are the fault-tolerance contract of the campaign machinery:

* the sweep *completes* — a poisoned point is quarantined into the result
  metadata, not allowed to abort the grid;
* surviving records are bitwise-identical to a fault-free run;
* a crashed shard worker is respawned and its in-flight point requeued;
* a multigrid stall (or injected solver fault) degrades to the exact LU
  fallback and flags the record, instead of failing the point;
* the service client retries connect/read failures under its policy, and
  the server drains gracefully on request.
"""

from __future__ import annotations

import dataclasses
import socket
import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.bench import scattered_hotspots_workload, small_synthetic_circuit
from repro.cli import main as cli_main
from repro.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    RetryPolicy,
    active_plan,
    plan_from_env,
)
from repro.flow import Campaign, ExperimentSetup, FailedPoint, ResultStore, SolverCache
from repro.service import ServiceError, SweepClient, SweepServer, request_once
from repro.thermal import ThermalGrid, ThermalSolver, default_package

NX = NY = 16
STRATEGIES = ("default", "eri")
OVERHEADS = (0.1, 0.2)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """No test may leave a fault plan installed process-wide."""
    yield
    faults.deactivate()


@pytest.fixture(scope="module")
def chaos_setup():
    circuit = small_synthetic_circuit()
    workload = scattered_hotspots_workload(circuit)
    return ExperimentSetup.prepare(
        circuit, workload, grid_nx=NX, grid_ny=NY,
        num_cycles=6, batch_size=4, seed=11,
    )


@pytest.fixture(scope="module")
def reference(chaos_setup):
    """Fault-free serial sweep the surviving records must match bitwise."""
    return Campaign(chaos_setup, STRATEGIES, OVERHEADS, name="ref").run(
        max_workers=1
    )


@pytest.fixture(scope="module")
def reference_mg(chaos_setup):
    """Fault-free multigrid-backend sweep, for the degraded-mode tests."""
    return Campaign(
        chaos_setup, STRATEGIES, OVERHEADS, name="ref-mg",
        cache=SolverCache(method="multigrid"),
    ).run(max_workers=1)


def _poison_rule():
    """Every attempt at (eri, 0.2) raises — the point cannot succeed."""
    return FaultRule(
        site="point.evaluate", times=None,
        match={"strategy": "eri", "overhead": 0.2},
    )


def _assert_survivors_bitwise(result, reference_result, *, expect_failed=1):
    assert result.metadata["num_failed"] == expect_failed
    failed = result.failed_points
    assert len(failed) == expect_failed
    for entry in failed:
        assert entry["strategy"] == "eri" and entry["overhead"] == 0.2
        assert "injected fault" in entry["error"]
    survivors = {record.point: record for record in result.records}
    assert len(survivors) == len(reference_result.records) - expect_failed
    for ref in reference_result.records:
        if ref.point in survivors:
            assert survivors[ref.point].outcome == ref.outcome  # bitwise


class TestFaultPlan:
    def test_inject_is_noop_without_plan(self):
        assert faults.get_active() is None
        faults.inject("anything", {"x": 1})  # must not raise

    def test_rule_matching_and_exhaustion(self):
        plan = FaultPlan().fail("site.a", match={"k": 1}, times=2)
        with pytest.raises(InjectedFault):
            plan.on_call("site.a", {"k": 1, "extra": "ignored"})
        plan.on_call("site.a", {"k": 2})  # context mismatch: no fire
        plan.on_call("site.b", {"k": 1})  # site mismatch: no fire
        with pytest.raises(InjectedFault):
            plan.on_call("site.a", {"k": 1})
        plan.on_call("site.a", {"k": 1})  # times=2 exhausted
        assert plan.fired("site.a") == 2
        assert plan.seen("site.a") == 4
        assert plan.seen("site.b") == 1

    def test_injected_fault_names_site_and_context(self):
        plan = FaultPlan().fail("shard.worker")
        with pytest.raises(InjectedFault, match="shard.worker") as info:
            plan.on_call("shard.worker", {"strategy": "eri"})
        assert info.value.site == "shard.worker"
        assert "strategy='eri'" in str(info.value)

    def test_custom_exception_type(self):
        plan = FaultPlan().fail("io", exception="ConnectionError")
        with pytest.raises(ConnectionError):
            plan.on_call("io", {})
        with pytest.raises(ValueError, match="unknown exception"):
            FaultRule(site="io", exception="NoSuchError")

    def test_bad_rule_specs_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultRule(site="x", kind="segfault")
        with pytest.raises(ValueError, match="probability"):
            FaultRule(site="x", probability=1.5)
        with pytest.raises(ValueError, match="unknown fault rule keys"):
            FaultRule.from_dict({"site": "x", "color": "red"})
        with pytest.raises(ValueError, match="site"):
            FaultRule.from_dict({"kind": "raise"})

    def test_json_roundtrip_and_env_parsing(self):
        plan = FaultPlan(seed=7).fail(
            "shard.worker", kind="exit",
            match={"strategy": "eri", "overhead": 0.1, "attempt": 0},
        ).fail("point.evaluate", times=None)
        clone = plan_from_env(plan.to_json())
        assert clone.seed == 7
        assert [rule.to_dict() for rule in clone.rules] == [
            rule.to_dict() for rule in plan.rules
        ]
        assert plan_from_env("") is None
        assert plan_from_env("   ") is None
        with pytest.raises(ValueError, match="not valid JSON"):
            plan_from_env("{nope")
        with pytest.raises(ValueError, match="JSON object"):
            plan_from_env("[1, 2]")

    def test_active_plan_restores_previous(self):
        outer = FaultPlan()
        inner = FaultPlan()
        faults.activate(outer)
        with active_plan(inner):
            assert faults.get_active() is inner
        assert faults.get_active() is outer

    def test_probability_coin_is_seed_deterministic(self):
        def firing_pattern(seed):
            plan = FaultPlan(seed=seed).fail(
                "maybe", times=None, probability=0.5
            )
            pattern = []
            for _ in range(32):
                try:
                    plan.on_call("maybe", {})
                    pattern.append(False)
                except InjectedFault:
                    pattern.append(True)
            return pattern

        assert firing_pattern(3) == firing_pattern(3)
        assert any(firing_pattern(3)) and not all(firing_pattern(3))
        assert firing_pattern(3) != firing_pattern(4)

    def test_plan_pickles_for_worker_transport(self):
        import pickle

        plan = FaultPlan(seed=5).fail("shard.worker", kind="exit")
        plan.fail("store.write")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == 5 and clone.rules[0].kind == "exit"
        with pytest.raises(InjectedFault):
            clone.on_call("store.write", {})  # lock was rebuilt


class TestRetryPolicy:
    def test_default_never_retries(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.classify(InjectedFault("x"))
        assert policy.classify(ConnectionError())
        assert not policy.classify(ValueError())

    def test_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_s=0.1, backoff_multiplier=2.0,
            max_backoff_s=0.3, jitter_fraction=0.1,
        )
        first = [policy.delay_s(n, token="t") for n in range(1, 5)]
        second = [policy.delay_s(n, token="t") for n in range(1, 5)]
        assert first == second  # pure function of (attempt, token)
        for attempt, delay in enumerate(first, start=1):
            base = min(0.3, 0.1 * 2.0 ** (attempt - 1))
            assert base <= delay <= base * 1.1
        assert policy.delay_s(1, token="t") != policy.delay_s(1, token="u")

    def test_zero_backoff_and_validation(self):
        assert RetryPolicy(max_attempts=2, backoff_s=0.0).delay_s(1) == 0.0
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=2).delay_s(0)


class TestSerialAndThreadedQuarantine:
    def test_poisoned_point_quarantined_serial(self, chaos_setup, reference):
        with active_plan(FaultPlan(rules=[_poison_rule()])):
            result = Campaign(
                chaos_setup, STRATEGIES, OVERHEADS, name="serial-chaos"
            ).run(max_workers=1)
        _assert_survivors_bitwise(result, reference)
        assert result.metadata["degraded_points"] == 0

    def test_poisoned_point_quarantined_threaded(self, chaos_setup, reference):
        with active_plan(FaultPlan(rules=[_poison_rule()])):
            result = Campaign(
                chaos_setup, STRATEGIES, OVERHEADS, name="thread-chaos"
            ).run(max_workers=2)
        _assert_survivors_bitwise(result, reference)

    def test_poisoned_point_quarantined_batched(self, chaos_setup):
        batched_ref = Campaign(
            chaos_setup, STRATEGIES, OVERHEADS, name="batched-ref",
            batch_solves=True,
        ).run(max_workers=1)
        with active_plan(FaultPlan(rules=[_poison_rule()])):
            result = Campaign(
                chaos_setup, STRATEGIES, OVERHEADS, name="batched-chaos",
                batch_solves=True,
            ).run(max_workers=1)
        _assert_survivors_bitwise(result, batched_ref)

    def test_fail_fast_aborts_instead(self, chaos_setup):
        with active_plan(FaultPlan(rules=[_poison_rule()])):
            with pytest.raises(InjectedFault):
                Campaign(
                    chaos_setup, STRATEGIES, OVERHEADS, name="ff",
                    fail_fast=True,
                ).run(max_workers=1)

    def test_transient_fault_retried_to_success(self, chaos_setup, reference):
        # The fault only matches attempt 0: one retry converges the sweep
        # to the fault-free answer, bitwise.
        plan = FaultPlan().fail(
            "point.evaluate", times=None,
            match={"strategy": "eri", "overhead": 0.2, "attempt": 0},
        )
        policy = RetryPolicy(max_attempts=2, backoff_s=0.0)
        with active_plan(plan):
            result = Campaign(
                chaos_setup, STRATEGIES, OVERHEADS, name="retry",
                retry_policy=policy,
            ).run(max_workers=1)
        assert result.metadata["num_failed"] == 0
        assert result.metadata["retries"] == 1
        assert plan.fired("point.evaluate") == 1
        for ours, ref in zip(result.records, reference.records):
            assert ours.outcome == ref.outcome

    def test_nonretryable_error_not_retried(self, chaos_setup):
        plan = FaultPlan().fail(
            "point.evaluate", times=None, exception="ValueError",
            match={"strategy": "eri", "overhead": 0.2},
        )
        with active_plan(plan):
            result = Campaign(
                chaos_setup, STRATEGIES, OVERHEADS, name="nonretry",
                retry_policy=RetryPolicy(max_attempts=3, backoff_s=0.0),
            ).run(max_workers=1)
        assert result.metadata["retries"] == 0
        assert result.metadata["num_failed"] == 1
        assert plan.fired("point.evaluate") == 1


class TestShardedChaos:
    def test_worker_crash_respawns_and_requeues(self, chaos_setup, reference):
        # Kill the worker evaluating (default, 0.1) on its first attempt:
        # the parent must respawn a worker, requeue the point, and finish
        # the grid bitwise-identical to the fault-free run.
        plan = FaultPlan(seed=1).fail(
            "shard.worker", kind="exit",
            match={"strategy": "default", "overhead": 0.1, "attempt": 0},
        )
        with active_plan(plan):
            result = Campaign(
                chaos_setup, STRATEGIES, OVERHEADS,
                executor="process", name="crash",
            ).run(max_workers=2)
        assert result.metadata["num_failed"] == 0
        assert result.metadata["respawns"] >= 1
        assert len(result.records) == len(reference.records)
        for ours, ref in zip(result.records, reference.records):
            assert ours.point == ref.point
            assert ours.outcome == ref.outcome  # bitwise

    def test_poisoned_point_quarantined_sharded(self, chaos_setup, reference):
        with active_plan(FaultPlan(rules=[_poison_rule()])):
            result = Campaign(
                chaos_setup, STRATEGIES, OVERHEADS,
                executor="process", name="shard-poison",
            ).run(max_workers=2)
        _assert_survivors_bitwise(result, reference)

    def test_full_chaos_sweep(self, chaos_setup, reference_mg):
        """The acceptance scenario: one seeded sweep with a worker crash, a
        poisoned point and forced multigrid non-convergence completes
        without aborting."""
        plan = FaultPlan(seed=2010)
        plan.fail(
            "shard.worker", kind="exit",
            match={"strategy": "default", "overhead": 0.1, "attempt": 0},
        )
        plan.rules.append(_poison_rule())
        # Every multigrid solve "stalls": the solver must degrade to LU.
        plan.fail("solver.multigrid", times=None)
        with active_plan(plan):
            result = Campaign(
                chaos_setup, STRATEGIES, OVERHEADS,
                executor="process", name="full-chaos",
                cache=SolverCache(method="multigrid"),
            ).run(max_workers=2)

        # Completed: the poisoned point is quarantined with its exception,
        # everything else survived.
        assert result.metadata["num_failed"] == 1
        entry = result.failed_points[0]
        assert entry["strategy"] == "eri" and entry["overhead"] == 0.2
        assert "injected fault" in entry["error"]
        assert result.metadata["respawns"] >= 1
        assert len(result.records) == 3

        # Every surviving record took the LU fallback and says so.
        assert result.metadata["degraded_points"] == 3
        for record in result.records:
            assert record.degraded
            ref = next(
                r for r in reference_mg.records if r.point == record.point
            )
            # Structural decisions come from the shared baseline: exact.
            assert record.outcome.inserted_rows == ref.outcome.inserted_rows
            assert record.outcome.actual_overhead == ref.outcome.actual_overhead
            # Thermal numbers come from the exact LU fallback: equal to the
            # healthy multigrid run to solver tolerance, not bitwise.
            assert record.outcome.peak_rise == pytest.approx(
                ref.outcome.peak_rise, rel=1e-6
            )


class TestSolverFallback:
    @pytest.fixture()
    def grid(self):
        return ThermalGrid(800.0, 800.0, nx=NX, ny=NY, package=default_package())

    @pytest.fixture()
    def power(self):
        return np.random.default_rng(3).random((NY, NX)) * 1e-4

    def test_injected_stall_falls_back_to_exact_lu(self, grid, power):
        lu = ThermalSolver(grid, method="lu").solve(power)
        solver = ThermalSolver(grid, method="multigrid")
        with active_plan(FaultPlan().fail("solver.multigrid")):
            degraded = solver.solve(power)
        assert degraded.fallback_used
        assert solver.fallback_count == 1
        assert solver.last_fallback_used
        # The fallback runs the same factorisation as method="lu"; only the
        # package-node elimination vector (computed at construction, by the
        # multigrid backend) differs, at solver tolerance.
        np.testing.assert_allclose(
            degraded.temperatures, lu.temperatures, rtol=1e-10, atol=1e-10
        )
        # And the next (healthy) solve is not flagged.
        healthy = solver.solve(power)
        assert not healthy.fallback_used
        assert solver.fallback_count == 1

    def test_genuine_nonconvergence_falls_back(self, grid, power):
        solver = ThermalSolver(grid, method="multigrid")
        solver._mg.max_iterations = 0  # no budget: every solve stalls
        solved = solver.solve(power)
        assert solved.fallback_used
        assert solver.fallback_count == 1
        lu = ThermalSolver(grid, method="lu").solve(power)
        np.testing.assert_allclose(
            solved.temperatures, lu.temperatures, rtol=1e-10, atol=1e-10
        )

    def test_fallback_disabled_raises(self, grid, power):
        solver = ThermalSolver(grid, method="multigrid", fallback=False)
        with active_plan(FaultPlan().fail("solver.multigrid")):
            with pytest.raises(InjectedFault):
                solver.solve(power)
        assert solver.fallback_count == 0


class TestStoreChaos:
    def test_write_fault_keeps_record_in_memory(self, tmp_path):
        store = ResultStore(root=tmp_path / "store")
        with active_plan(FaultPlan().fail("store.write")):
            store.put("k1", {"value": 1})
        assert store.stats().write_errors == 1
        assert store.get("k1") == {"value": 1}  # memory tier still serves
        # The entry never reached disk: a fresh instance misses.
        assert ResultStore(root=tmp_path / "store").get("k1") is None
        # Healthy writes still persist.
        store.put("k2", {"value": 2})
        assert ResultStore(root=tmp_path / "store").get("k2") == {"value": 2}

    def test_read_fault_treated_as_corruption(self, tmp_path):
        ResultStore(root=tmp_path / "store").put("k", "payload")
        reader = ResultStore(root=tmp_path / "store")
        with active_plan(FaultPlan().fail("store.read")):
            assert reader.get("k") is None  # evicted, not served blindly
        assert reader.stats().corrupt_evictions == 1
        # The damaged entry was evicted from disk; a recompute republishes.
        assert reader.get("k") is None
        reader.put("k", "payload")
        assert ResultStore(root=tmp_path / "store").get("k") == "payload"

    def test_campaign_survives_write_fault_and_recomputes_later(
        self, chaos_setup, tmp_path, reference
    ):
        with active_plan(FaultPlan().fail("store.write")):
            first = Campaign(
                chaos_setup, STRATEGIES, OVERHEADS, name="lossy",
                result_store=ResultStore(root=tmp_path / "results"),
            ).run(max_workers=1)
        assert len(first.records) == 4  # durability degraded, sweep did not
        # One record exists only in the dead process's memory: a rerun
        # against the same root recomputes exactly that point.
        rerun = Campaign(
            chaos_setup, STRATEGIES, OVERHEADS, name="rerun",
            result_store=ResultStore(root=tmp_path / "results"),
        ).run(max_workers=1)
        assert rerun.metadata["store_hits"] == 3
        assert rerun.metadata["num_evaluated"] == 1
        for ours, ref in zip(rerun.records, reference.records):
            assert ours.outcome == ref.outcome


@pytest.fixture(scope="module")
def chaos_server(chaos_setup):
    instance = SweepServer(
        {chaos_setup.workload.name: chaos_setup}, port=0, batch_window_s=0.05
    )
    with instance:
        yield instance


class TestServiceChaos:
    def test_health_probe(self, chaos_server):
        host, port = chaos_server.address
        health = SweepClient(host=host, port=port).health()
        assert health["status"] == "serving"
        assert health["pending"] == 0
        assert health["workloads"] == [
            sorted(chaos_server.setups)[0]
        ]

    def test_client_retries_connect_failures(self, chaos_server):
        host, port = chaos_server.address
        plan = FaultPlan().fail("client.request", times=2)
        client = SweepClient(
            host=host, port=port,
            retry_policy=RetryPolicy(max_attempts=3, backoff_s=0.0),
        )
        with active_plan(plan):
            response = client.ping()
        assert response["ok"]
        assert plan.fired("client.request") == 2  # two failures, then through

    def test_request_once_default_does_not_retry(self, chaos_server):
        host, port = chaos_server.address
        with active_plan(FaultPlan().fail("client.request")):
            with pytest.raises(InjectedFault):
                request_once(host, port, {"op": "ping"})

    def test_server_side_fault_is_an_error_response(self, chaos_server):
        host, port = chaos_server.address
        client = SweepClient(host=host, port=port)
        with active_plan(FaultPlan().fail("service.sweep")):
            with pytest.raises(ServiceError, match="injected fault"):
                client.sweep("anything", STRATEGIES, OVERHEADS)
        # The daemon survived the fault and still answers.
        assert client.ping()["ok"]

    def test_failed_point_fails_only_its_waiters(self, chaos_setup, chaos_server):
        host, port = chaos_server.address
        name = chaos_setup.workload.name
        client = SweepClient(host=host, port=port)
        with active_plan(FaultPlan(rules=[_poison_rule()])):
            with pytest.raises(ServiceError, match="failed after"):
                client.sweep(name, STRATEGIES, OVERHEADS)
        # The three healthy points were solved and stored; only the
        # poisoned one is recomputed once the fault is gone.
        result, stats = client.sweep(name, STRATEGIES, OVERHEADS)
        assert stats["store_hits"] == 3
        assert stats["computed"] == 1
        assert len(result.records) == 4
        assert chaos_server.stats()["failed_points"] == 1

    def test_drain_shutdown_finishes_inflight_sweeps(self, chaos_setup):
        instance = SweepServer(
            {chaos_setup.workload.name: chaos_setup}, port=0,
            batch_window_s=0.3,
        )
        instance.start()
        host, port = instance.address
        name = chaos_setup.workload.name
        outcome = {}

        def submit():
            client = SweepClient(host=host, port=port)
            outcome["result"] = client.sweep(name, STRATEGIES, OVERHEADS)

        thread = threading.Thread(target=submit)
        thread.start()
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and not instance._pending:
                time.sleep(0.01)
            assert instance._pending, "sweep never reached the queue"
            SweepClient(host=host, port=port).shutdown_server(drain=True)
        finally:
            thread.join(timeout=120.0)
        # The in-flight sweep completed despite the shutdown...
        result, _stats = outcome["result"]
        assert len(result.records) == 4
        # ... and the server is now gone: new connections are refused.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and instance._serve_thread.is_alive():
            time.sleep(0.02)
        assert not instance._serve_thread.is_alive()
        with pytest.raises(OSError):
            request_once(host, port, {"op": "ping"}, timeout=2.0)

    def test_draining_server_rejects_new_sweeps(self, chaos_setup):
        instance = SweepServer(
            {chaos_setup.workload.name: chaos_setup}, port=0
        )
        instance.start()
        try:
            instance._draining.set()  # as the shutdown op does, pre-response
            response = instance._dispatch(
                b'{"op": "sweep", "workload": "x", '
                b'"strategies": ["eri"], "overheads": [0.1]}'
            )
            assert not response["ok"]
            assert "draining" in response["error"]
            health = instance._dispatch(b'{"op": "health"}')
            assert health["status"] == "draining"
        finally:
            instance.shutdown()


class TestCliFaults:
    def test_jobs_must_be_positive(self, capsys):
        for command in ("sweep", "serve"):
            for bad in ("0", "-2", "x"):
                with pytest.raises(SystemExit) as info:
                    cli_main([command, "--jobs", bad])
                assert info.value.code == 2
        err = capsys.readouterr().err
        assert "positive integer" in err

    def test_max_point_retries_validated(self, capsys, tmp_path):
        assert cli_main(
            ["sweep", "--small", "--max-point-retries", "-1",
             "--out", str(tmp_path)]
        ) == 2
        assert "--max-point-retries" in capsys.readouterr().err

    def test_submit_down_server_names_address(self, capsys, tmp_path):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        # Nothing listens on `port` any more: submit must fail cleanly.
        status = cli_main([
            "submit", "--host", "127.0.0.1", "--port", str(port),
            "--out", str(tmp_path),
        ])
        assert status == 2
        err = capsys.readouterr().err
        assert f"127.0.0.1:{port}" in err
        assert "cannot reach server" in err

    def test_env_plan_installs_for_cli_runs(self, monkeypatch, capsys):
        plan = FaultPlan(seed=9).fail("point.evaluate", times=None)
        monkeypatch.setenv(faults.ENV_VAR, plan.to_json())
        # `strategies` is the cheapest command that goes through main().
        assert cli_main(["strategies"]) == 0
        installed = faults.get_active()
        assert installed is not None and installed.seed == 9

    def test_env_plan_bad_json_is_a_clean_error(self, monkeypatch, capsys):
        monkeypatch.setenv(faults.ENV_VAR, "{broken")
        assert cli_main(["strategies"]) == 2
        assert "not valid JSON" in capsys.readouterr().err
