"""Vectorized gate-level logic simulation.

Substitutes for the Synopsys VCS logic-simulation step of the paper's flow.
The simulator is a synchronous, zero-delay, cycle-based simulator: on every
clock cycle it applies the next primary-input vector, evaluates the
levelized combinational logic, and then updates every flip-flop with the
value at its D pin.

Two engines implement the same semantics (see :mod:`repro.engine`):

* ``"compiled"`` (default) — the netlist's compiled structure-of-arrays
  form evaluates whole levels as grouped boolean array expressions over a
  ``(net, lane)`` value matrix; activity statistics are accumulated as
  whole-array reductions.
* ``"reference"`` — the original per-gate dispatch loop, kept as the
  executable specification.

The output is a per-net switching-activity annotation (toggles per cycle
and static probability) which the power model consumes — the same
information a SAIF file would carry in the commercial flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..deadlines import check_active
from ..engine import resolve_engine
from ..netlist import CellInstance, Netlist
from .vectors import VectorSet


@dataclass
class SimulationResult:
    """Outcome of a cycle-based simulation.

    Attributes:
        toggle_counts: Mapping net name -> total number of observed
            transitions summed over all streams.
        one_counts: Mapping net name -> total number of cycles (summed over
            streams) the net was logic 1.
        num_cycles: Number of simulated cycles (after warm-up).
        batch_size: Number of parallel streams.
        final_values: Net name -> boolean array with the last cycle's values
            (useful for functional checks in tests).
        net_order: Net names aligned with :attr:`toggle_array` /
            :attr:`one_array` when the compiled engine produced the result
            (``None`` otherwise).
        toggle_array: Per-net toggle counts aligned with :attr:`net_order`.
        one_array: Per-net one counts aligned with :attr:`net_order`.
    """

    toggle_counts: Dict[str, int]
    one_counts: Dict[str, int]
    num_cycles: int
    batch_size: int
    final_values: Dict[str, np.ndarray]
    net_order: Optional[List[str]] = field(default=None, repr=False)
    toggle_array: Optional[np.ndarray] = field(default=None, repr=False)
    one_array: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def total_samples(self) -> int:
        """Total number of per-net observations (cycles x streams)."""
        return self.num_cycles * self.batch_size

    def toggle_rate(self, net: str) -> float:
        """Average toggles per cycle for ``net``."""
        if self.num_cycles <= 1:
            return 0.0
        return self.toggle_counts.get(net, 0) / float((self.num_cycles - 1) * self.batch_size)

    def static_probability(self, net: str) -> float:
        """Fraction of samples in which ``net`` was logic 1."""
        if self.total_samples == 0:
            return 0.0
        return self.one_counts.get(net, 0) / float(self.total_samples)


class LogicSimulator:
    """Cycle-based, vectorized logic simulator for a gate-level netlist.

    Args:
        netlist: The design to simulate.  The combinational portion must be
            acyclic (cycles through flip-flops are fine).
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self._order_cache: Optional[List[CellInstance]] = None
        self._sequential: List[CellInstance] = netlist.sequential_cells()

    @property
    def _order(self) -> List[CellInstance]:
        """Topological evaluation order (built on first reference-engine use)."""
        if self._order_cache is None:
            self._order_cache = self.netlist.levelize()
        return self._order_cache

    # ------------------------------------------------------------------

    def simulate(
        self,
        vectors: VectorSet,
        warmup_cycles: int = 2,
        engine: Optional[str] = None,
    ) -> SimulationResult:
        """Run the simulation over a :class:`VectorSet`.

        Args:
            vectors: Input stimulus; must cover every primary input.
            warmup_cycles: Initial cycles excluded from activity statistics
                (lets flip-flop state settle).
            engine: ``"compiled"`` or ``"reference"``; defaults to the
                process-wide engine (see :mod:`repro.engine`).

        Returns:
            A :class:`SimulationResult` with per-net activity counts.

        Raises:
            KeyError: If a primary input has no stimulus.
        """
        if resolve_engine(engine) == "reference":
            return self._simulate_reference(vectors, warmup_cycles)
        return self._simulate_compiled(vectors, warmup_cycles)

    # ------------------------------------------------------------------
    # Compiled engine
    # ------------------------------------------------------------------

    def _simulate_compiled(self, vectors: VectorSet, warmup_cycles: int) -> SimulationResult:
        comp = self.netlist.compiled()
        num_cycles = vectors.num_cycles
        batch = vectors.batch_size
        warmup_cycles = min(warmup_cycles, max(num_cycles - 2, 0))

        # Stimulus, stacked as (num_connected_inputs, cycles, batch).
        pi_slots: List[int] = []
        pi_streams: List[np.ndarray] = []
        for name, slot in comp.pi_ports:
            stream = vectors.values.get(name)
            if stream is None:
                raise KeyError(f"no stimulus for primary input {name}")
            if slot >= 0:
                pi_slots.append(slot)
                pi_streams.append(stream)
        pi_slot_arr = np.array(pi_slots, dtype=np.int64)
        pi_stack = (
            np.ascontiguousarray(np.stack(pi_streams, axis=0))
            if pi_streams
            else np.zeros((0, num_cycles, batch), dtype=bool)
        )

        num_nets = comp.num_nets
        values = np.zeros((comp.num_slots, batch), dtype=bool)
        state = np.zeros((comp.seq_cells.shape[0], batch), dtype=bool)
        ones = np.zeros(num_nets, dtype=np.int64)
        toggles = np.zeros(num_nets, dtype=np.int64)
        prev = np.empty((num_nets, batch), dtype=bool)
        have_prev = False

        for cycle in range(num_cycles):
            # Cooperative cancellation between cycles (one whole-netlist
            # level batch is the compiled engine's unit of work).
            check_active("power.logicsim")
            values[pi_slot_arr] = pi_stack[:, cycle]
            values[comp.seq_q_slot] = state
            comp.evaluate_levels(values)

            if cycle >= warmup_cycles:
                net_values = values[:num_nets]
                ones += np.count_nonzero(net_values, axis=1)
                if have_prev:
                    toggles += np.count_nonzero(net_values != prev, axis=1)
                np.copyto(prev, net_values)
                have_prev = True

            # Clock edge: capture D into Q for the next cycle.
            state = values[comp.seq_d_slot]

        counted_cycles = num_cycles - warmup_cycles
        driven = comp.driven_slots
        names = comp.net_names
        driven_names = [names[i] for i in driven]
        one_counts = dict(zip(driven_names, ones[driven].tolist()))
        toggle_counts = (
            dict(zip(driven_names, toggles[driven].tolist()))
            if counted_cycles >= 2
            else {}
        )
        final_values = {
            name: values[slot].copy() for name, slot in zip(driven_names, driven)
        }
        return SimulationResult(
            toggle_counts=toggle_counts,
            one_counts=one_counts,
            num_cycles=counted_cycles,
            batch_size=batch,
            final_values=final_values,
            net_order=names,
            toggle_array=toggles,
            one_array=ones,
        )

    # ------------------------------------------------------------------
    # Reference engine (original per-gate dispatch loop)
    # ------------------------------------------------------------------

    def _simulate_reference(self, vectors: VectorSet, warmup_cycles: int) -> SimulationResult:
        num_cycles = vectors.num_cycles
        batch = vectors.batch_size
        warmup_cycles = min(warmup_cycles, max(num_cycles - 2, 0))

        # Flip-flop state: Q values, initialised to 0.
        state: Dict[str, np.ndarray] = {
            ff.name: np.zeros(batch, dtype=bool) for ff in self._sequential
        }

        toggle_counts: Dict[str, int] = {}
        one_counts: Dict[str, int] = {}
        previous: Dict[str, np.ndarray] = {}
        values: Dict[str, np.ndarray] = {}

        for cycle in range(num_cycles):
            check_active("power.logicsim")
            values = self._evaluate_cycle(vectors, state, cycle, batch)

            if cycle >= warmup_cycles:
                for net_name, arr in values.items():
                    ones = int(np.count_nonzero(arr))
                    one_counts[net_name] = one_counts.get(net_name, 0) + ones
                    prev = previous.get(net_name)
                    if prev is not None:
                        toggled = int(np.count_nonzero(arr != prev))
                        toggle_counts[net_name] = toggle_counts.get(net_name, 0) + toggled
                previous = values

            # Clock edge: capture D into Q for the next cycle.
            for ff in self._sequential:
                d_pin = ff.input_pins[0]
                if d_pin.net is not None and d_pin.net.name in values:
                    state[ff.name] = values[d_pin.net.name].copy()

        counted_cycles = num_cycles - warmup_cycles
        return SimulationResult(
            toggle_counts=toggle_counts,
            one_counts=one_counts,
            num_cycles=counted_cycles,
            batch_size=batch,
            final_values=values,
        )

    # ------------------------------------------------------------------

    def _evaluate_cycle(
        self,
        vectors: VectorSet,
        state: Dict[str, np.ndarray],
        cycle: int,
        batch: int,
    ) -> Dict[str, np.ndarray]:
        """Evaluate all net values for one clock cycle."""
        values: Dict[str, np.ndarray] = {}

        # Primary inputs.
        for port in self.netlist.primary_inputs:
            stream = vectors.values.get(port.name)
            if stream is None:
                raise KeyError(f"no stimulus for primary input {port.name}")
            if port.net is not None:
                values[port.net.name] = stream[cycle]

        # Flip-flop outputs (current state).
        for ff in self._sequential:
            q_pin = ff.output_pins[0]
            if q_pin.net is not None:
                values[q_pin.net.name] = state[ff.name]

        # Combinational logic in topological order.
        zeros = np.zeros(batch, dtype=bool)
        for inst in self._order:
            inputs = []
            for pin in inst.input_pins:
                if pin.net is None:
                    inputs.append(zeros)
                else:
                    inputs.append(values.get(pin.net.name, zeros))
            outputs = inst.master.evaluate(inputs)
            for pin, arr in zip(inst.output_pins, outputs):
                if pin.net is not None:
                    values[pin.net.name] = arr

        return values

    # ------------------------------------------------------------------

    def evaluate_combinational(
        self,
        input_values: Dict[str, np.ndarray],
        register_values: Optional[Dict[str, np.ndarray]] = None,
        engine: Optional[str] = None,
    ) -> Dict[str, np.ndarray]:
        """Single combinational evaluation with explicit input values.

        Used by functional tests (e.g. checking that a generated multiplier
        really multiplies) without the cycle/stimulus machinery.

        Args:
            input_values: Mapping primary-input name -> boolean array.
            register_values: Optional mapping flip-flop instance name ->
                boolean array of current Q values (default all zero).
            engine: ``"compiled"`` or ``"reference"``; defaults to the
                process-wide engine.

        Returns:
            Mapping net name -> boolean array of evaluated values.
        """
        batch = len(next(iter(input_values.values())))

        if resolve_engine(engine) == "reference":
            state = {
                ff.name: (register_values or {}).get(ff.name, np.zeros(batch, dtype=bool))
                for ff in self._sequential
            }

            class _SingleCycle:
                def __init__(self, values: Dict[str, np.ndarray]) -> None:
                    self.values = {
                        k: np.asarray(v, dtype=bool)[np.newaxis, :]
                        for k, v in values.items()
                    }
                    self.num_cycles = 1
                    self.batch_size = batch

            return self._evaluate_cycle(_SingleCycle(input_values), state, 0, batch)

        comp = self.netlist.compiled()
        values = np.zeros((comp.num_slots, batch), dtype=bool)
        registers = register_values or {}
        for pos, ci in enumerate(comp.seq_cells):
            q_values = registers.get(comp.cell_names[ci])
            if q_values is not None:
                values[comp.seq_q_slot[pos]] = np.asarray(q_values, dtype=bool)
        for name, slot in comp.pi_ports:
            stream = input_values.get(name)
            if stream is None:
                raise KeyError(f"no stimulus for primary input {name}")
            if slot >= 0:
                values[slot] = np.asarray(stream, dtype=bool)
        comp.evaluate_levels(values)
        return {
            comp.net_names[slot]: values[slot].copy() for slot in comp.driven_slots
        }
