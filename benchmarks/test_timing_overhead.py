"""Timing overhead of the proposed techniques.

Section IV: "The maximum timing overhead caused by applying the proposed
methods is around 2%."  This benchmark runs temperature-aware static timing
analysis before and after each transformation at the largest overhead of
the Figure 6 sweep and reports the critical-path change.

Empty row insertion only moves whole rows apart (and lowers the operating
temperature), so its overhead is expected to be negligible or negative; the
hotspot wrapper relocates individual cells and shows a small positive
overhead (our greedy relocator is cruder than the commercial incremental
placement the paper relies on — see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.flow import Campaign

#: Largest overhead of the Figure 6 sweep.
OVERHEAD = 0.322

#: Generous upper bound on the acceptable critical-path increase.
MAX_TIMING_OVERHEAD = 0.10


def test_timing_overhead_of_all_techniques(scattered_setup, benchmark):
    setup = scattered_setup

    campaign = Campaign(
        setup, strategies=("default", "eri", "hw"), overheads=(OVERHEAD,),
        analyze_timing=True, name="timing-overhead",
    )

    def run():
        return {
            record.point.strategy: record.outcome
            for record in campaign.run().records
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\nbaseline critical path: {setup.timing.critical_path_ps:.1f} ps "
          f"(clock {setup.timing.clock_period_ps:.0f} ps)")
    for strategy, outcome in outcomes.items():
        print(f"  {strategy:8s} overhead {outcome.actual_overhead * 100:5.1f}%  "
              f"timing overhead {outcome.timing_overhead * 100:+5.2f}%")

    for strategy, outcome in outcomes.items():
        assert outcome.timing_overhead is not None
        assert outcome.timing_overhead < MAX_TIMING_OVERHEAD, strategy

    # ERI's row shifting must stay in the "around 2%" band the paper quotes.
    assert outcomes["eri"].timing_overhead < 0.03
