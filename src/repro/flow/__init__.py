"""End-to-end experiment flow (place -> power -> thermal -> area management).

Single points are evaluated with :class:`ExperimentSetup` and
:func:`evaluate_strategy`; grids of points are executed by the
:class:`Campaign` runner, which shares one :class:`SolverCache` across all
points and can fan them out over worker threads or — with
``executor="process"`` — shard them across worker processes that share the
baseline arrays via shared memory.  The staged path — :class:`FlowGraph`
over a content-addressed :class:`ArtifactStore` — runs the same pipeline
as explicit stages and re-executes only stages whose input hashes changed,
producing bitwise-identical results.  A persistent :class:`ResultStore`
makes whole campaigns incremental: completed grid points are published as
they finish and reused verbatim by any later (or interrupted-and-rerun)
sweep, across processes and across the ``repro serve`` daemon.
"""

from .artifacts import (
    ArtifactStore,
    LegalizedArtifact,
    PlacementArtifact,
    PowerArtifact,
    StaArtifact,
    StoreStats,
    ThermalArtifact,
    WhitespaceArtifact,
    netlist_digest,
    placement_digest,
)
from .cache import CacheStats, SolverCache, geometry_key, package_fingerprint
from .graph import STAGES, FlowGraph
from .experiment import (
    DEFAULT_OVERHEADS,
    DEFAULT_STRATEGIES,
    ExperimentSetup,
    PreparedEvaluation,
    StrategyOutcome,
    concentrated_hotspot_table,
    evaluate_strategy,
    finish_evaluation,
    prepare_evaluation,
    sweep_overheads,
)
from .runner import (
    Campaign,
    CampaignPoint,
    CampaignRecord,
    CampaignResult,
    FailedPoint,
    records_from_outcomes,
)
from .recover import FsckReport, fsck_store, recover_store
from .store import (
    PruneReport,
    ResultStore,
    ResultStoreStats,
    StoreUsage,
    prune_store,
    result_key,
    scan_store,
    setup_digest,
)

__all__ = [
    "ArtifactStore",
    "StoreStats",
    "ResultStore",
    "ResultStoreStats",
    "StoreUsage",
    "PruneReport",
    "setup_digest",
    "result_key",
    "scan_store",
    "prune_store",
    "FsckReport",
    "fsck_store",
    "recover_store",
    "FlowGraph",
    "STAGES",
    "PlacementArtifact",
    "PowerArtifact",
    "WhitespaceArtifact",
    "LegalizedArtifact",
    "ThermalArtifact",
    "StaArtifact",
    "netlist_digest",
    "placement_digest",
    "CacheStats",
    "SolverCache",
    "geometry_key",
    "package_fingerprint",
    "ExperimentSetup",
    "PreparedEvaluation",
    "StrategyOutcome",
    "concentrated_hotspot_table",
    "evaluate_strategy",
    "finish_evaluation",
    "prepare_evaluation",
    "sweep_overheads",
    "DEFAULT_OVERHEADS",
    "DEFAULT_STRATEGIES",
    "Campaign",
    "CampaignPoint",
    "CampaignRecord",
    "CampaignResult",
    "FailedPoint",
    "records_from_outcomes",
]
