"""Random test-vector generation.

The paper estimates power with Synopsys Power Compiler "based on annotated
switching activity of randomly generated test vectors", and controls the
size and position of hotspots "using different workloads".  This module
generates those random vector streams: every primary input gets a boolean
sequence whose *toggle probability* is set per input (via the workload), so
active arithmetic units see busy inputs while idle units see almost static
ones.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from ..netlist import Netlist


class VectorSet:
    """A batch of input stimulus for the logic simulator.

    Attributes:
        values: Mapping primary-input name -> boolean array of shape
            ``(num_cycles, batch_size)``.  The first axis is time (clock
            cycles), the second axis independent Monte-Carlo streams.
        num_cycles: Number of clock cycles.
        batch_size: Number of parallel streams.
    """

    def __init__(self, values: Dict[str, np.ndarray]) -> None:
        if not values:
            raise ValueError("VectorSet requires at least one input")
        shapes = {arr.shape for arr in values.values()}
        if len(shapes) != 1:
            raise ValueError(f"inconsistent vector shapes: {shapes}")
        self.values = values
        self.num_cycles, self.batch_size = next(iter(shapes))

    def toggle_rate(self, name: str) -> float:
        """Average toggles per cycle of input ``name`` over the batch."""
        arr = self.values[name]
        if arr.shape[0] < 2:
            return 0.0
        toggles = np.count_nonzero(arr[1:] != arr[:-1])
        return toggles / float((arr.shape[0] - 1) * arr.shape[1])


def generate_vectors(
    netlist: Netlist,
    toggle_probabilities: Mapping[str, float],
    num_cycles: int = 24,
    batch_size: int = 32,
    default_probability: float = 0.5,
    seed: int = 2010,
) -> VectorSet:
    """Generate random input vectors with per-input toggle probabilities.

    Each input starts from a random value and, on every subsequent cycle,
    toggles independently with its configured probability.  A toggle
    probability of 0.5 corresponds to fully random data; near 0.0 models an
    idle (clock-gated or operand-isolated) unit.

    Args:
        netlist: Design whose primary inputs are stimulated.
        toggle_probabilities: Mapping primary-input name -> probability of
            toggling on any given cycle.  Inputs not present use
            ``default_probability``.
        num_cycles: Number of clock cycles to generate.
        batch_size: Number of independent parallel streams.
        default_probability: Toggle probability for unlisted inputs.
        seed: Random seed, for reproducible experiments.

    Returns:
        A :class:`VectorSet`.

    Raises:
        ValueError: If the netlist has no primary inputs or a probability is
            outside ``[0, 1]``.
    """
    inputs = netlist.primary_inputs
    if not inputs:
        raise ValueError("netlist has no primary inputs")
    for name, prob in toggle_probabilities.items():
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"toggle probability for {name!r} out of range: {prob}")
    if not 0.0 <= default_probability <= 1.0:
        raise ValueError(f"default_probability out of range: {default_probability}")

    rng = np.random.default_rng(seed)
    values: Dict[str, np.ndarray] = {}
    for port in inputs:
        prob = toggle_probabilities.get(port.name, default_probability)
        initial = rng.random(batch_size) < 0.5
        toggles = rng.random((num_cycles - 1, batch_size)) < prob
        stream = np.empty((num_cycles, batch_size), dtype=bool)
        stream[0] = initial
        # Cumulative XOR (parity) of the toggle events yields the waveform.
        parity = (np.cumsum(toggles, axis=0, dtype=np.int64) % 2).astype(bool)
        stream[1:] = parity ^ initial
        values[port.name] = stream
    return VectorSet(values)
