"""Table I: concentrated hotspot, Default versus Empty Row Insertion.

The paper's second test set has "a single, large, concentrated hotspot".
Table I compares the Default scheme at 16.1% and 32.2% area overhead with
ERI inserting 20 and 40 rows (the same overheads), and reports that ERI
achieves larger peak-temperature reductions (13.1% vs 11.3% and 28.6% vs
20.2%), with the advantage growing at the larger overhead.

The shape reproduced here: ERI beats Default at equal overhead at both
points, and the ERI advantage widens from the small to the large overhead.
The hotspot wrapper is also evaluated to confirm the paper's remark that it
"is not suitable for large hotspots".
"""

from __future__ import annotations

from repro.analysis import table1_report
from repro.flow import concentrated_hotspot_table, evaluate_strategy

#: Inserted-row counts from the paper's Table I.
ROW_COUNTS = (20, 40)


def test_table1_default_vs_eri(concentrated_setup, benchmark):
    setup = concentrated_setup

    rows = benchmark.pedantic(
        lambda: concentrated_hotspot_table(setup, row_counts=ROW_COUNTS),
        rounds=1,
        iterations=1,
    )

    print()
    print(table1_report(rows))
    print(f"baseline core: {setup.placement.floorplan.core_width:.0f} x "
          f"{setup.placement.floorplan.core_height:.0f} um, "
          f"{setup.placement.floorplan.num_rows} rows; "
          f"peak rise {setup.thermal_map.peak_rise:.2f} K")

    default_small, default_large, eri_small, eri_large = rows

    # Everything reduces the peak temperature.
    for outcome in rows:
        assert outcome.temperature_reduction > 0.0

    # ERI beats Default at (approximately) the same area overhead.
    assert eri_small.temperature_reduction > default_small.temperature_reduction
    assert eri_large.temperature_reduction > default_large.temperature_reduction

    # The ERI advantage grows with the overhead (13.1-11.3 -> 28.6-20.2 in
    # the paper).
    gap_small = eri_small.temperature_reduction - default_small.temperature_reduction
    gap_large = eri_large.temperature_reduction - default_large.temperature_reduction
    assert gap_large > gap_small

    # More rows help more.
    assert eri_large.temperature_reduction > eri_small.temperature_reduction
    assert eri_small.inserted_rows == ROW_COUNTS[0]
    assert eri_large.inserted_rows == ROW_COUNTS[1]


def test_table1_wrapper_unsuited_for_large_hotspots(concentrated_setup, benchmark):
    setup = concentrated_setup

    def run():
        overhead = ROW_COUNTS[0] / setup.placement.floorplan.num_rows
        hw = evaluate_strategy(setup, "hw", overhead, analyze_timing=False)
        eri = evaluate_strategy(setup, "eri", overhead, analyze_timing=False)
        return hw, eri

    hw, eri = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nconcentrated hotspot at ~{hw.requested_overhead * 100:.1f}% overhead: "
          f"HW reduction {hw.temperature_reduction * 100:.1f}% vs "
          f"ERI {eri.temperature_reduction * 100:.1f}%")
    # "the hotspot wrapper method is not suitable for large hotspots":
    # ERI must clearly outperform HW here.
    assert eri.temperature_reduction > hw.temperature_reduction
