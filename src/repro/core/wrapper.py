"""Hotspot Wrapper (HW).

Section III-B of the paper: filler cells are inserted "one by one (i.e.,
not an entire row), that serve as a whitespace around a hotspot, which we
call a hotspot wrapper. ... we isolate the hotspot from the rest of the
circuit using a wrapper, namely, the cells which are the source of the
hotspot are enclosed in a whitespace ring.  Once the hotspot is isolated,
we reduce the cell density inside the wrapper by moving cells not belonging
to the hotspot outside the wrapper and uniformly distribute the remaining
cells in the wrapper area."

Implementation, per hotspot:

1. the hotspot rectangle is expanded by the wrapper (ring) width;
2. every cell inside the expanded rectangle that does not belong to the
   hotspot's source units is evicted and re-inserted into the nearest free
   space outside (the "exclusive move bounds" of commercial tools);
3. the hotspot's own cells are re-distributed uniformly over the rows of
   the *inner* rectangle, leaving the surrounding ring as pure whitespace;
4. the whitespace (ring and in-between gaps) is filled with filler cells.

As in the paper, the wrapper does not change the die outline: the area
overhead comes from the utilization relaxation of the placement it starts
from (the "Default" solution), and the wrapper concentrates that existing
whitespace around the hotspots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..placement import Placement, insert_fillers, remove_fillers
from ..placement.floorplan import Rect
from ..placement.legalize import pack_into_region
from .hotspot import Hotspot


@dataclass
class WrappedHotspot:
    """Book-keeping for one wrapped hotspot.

    Attributes:
        hotspot_index: Index of the source :class:`Hotspot`.
        inner_rect: Rectangle the hot cells were redistributed into.
        outer_rect: Expanded rectangle (inner plus the whitespace ring).
        hot_units: Units treated as the hotspot's source.
        num_hot_cells: Hot cells redistributed inside the wrapper.
        num_evicted: Bystander cells moved out of the wrapper.
        num_unmoved: Bystander cells that could not be relocated (left in
            place; reported so the caller can fall back to a larger ring).
    """

    hotspot_index: int
    inner_rect: Rect
    outer_rect: Rect
    hot_units: List[str] = field(default_factory=list)
    num_hot_cells: int = 0
    num_evicted: int = 0
    num_unmoved: int = 0


@dataclass
class HotspotWrapperResult:
    """Outcome of the hotspot-wrapper transformation.

    Attributes:
        placement: The transformed placement (cloned netlist).
        wrapped: Per-hotspot book-keeping.
        num_fillers: Filler cells inserted after the transformation.
    """

    placement: Placement
    wrapped: List[WrappedHotspot] = field(default_factory=list)
    num_fillers: int = 0

    @property
    def total_evicted(self) -> int:
        """Total bystander cells moved out of all wrappers."""
        return sum(w.num_evicted for w in self.wrapped)


def _dominant_units(
    placement: Placement, hotspot: Hotspot, max_units: int, power_fraction: float = 0.75
) -> List[str]:
    """Units responsible for most of the hotspot's power.

    Uses the ranking computed at detection time and keeps the smallest
    prefix of units that is plausible as "the source of the hotspot",
    bounded by ``max_units``.
    """
    if not hotspot.dominant_units:
        return []
    return hotspot.dominant_units[:max_units]


def apply_hotspot_wrapper(
    baseline: Placement,
    hotspots: Sequence[Hotspot],
    ring_width_um: float = 6.0,
    max_source_units: int = 2,
    max_hotspots: Optional[int] = None,
    add_fillers: bool = True,
) -> HotspotWrapperResult:
    """Wrap each hotspot in whitespace and thin out its cell density.

    Args:
        baseline: Placement to transform (typically a "Default" placement
            at relaxed utilization); left untouched.
        hotspots: Detected hotspots, hottest first.
        ring_width_um: Width of the whitespace ring around each hotspot.
        max_source_units: Maximum number of units treated as the hotspot's
            source (cells of other units are evicted).
        max_hotspots: Only wrap the hottest N hotspots when given.
        add_fillers: Fill the resulting whitespace with dummy cells.

    Returns:
        A :class:`HotspotWrapperResult` on a cloned netlist.

    Raises:
        ValueError: If ``ring_width_um`` is negative.
    """
    if ring_width_um < 0.0:
        raise ValueError(f"ring_width_um must be non-negative, got {ring_width_um}")

    placement = baseline.copy()
    # Any fillers present in the baseline (e.g. a Default placement that was
    # already filled) are removed first; whitespace is re-filled at the end.
    remove_fillers(placement)
    selected = list(hotspots if max_hotspots is None else hotspots[:max_hotspots])
    wrapped: List[WrappedHotspot] = []
    core = placement.floorplan.core_rect

    for hotspot in selected:
        inner = hotspot.rect.clipped(core)
        if inner.area <= 0.0:
            continue
        outer = inner.expanded(ring_width_um).clipped(core)
        # The wrapper is meant for small, concentrated hotspots; wrapping a
        # region that covers most of the core cannot create meaningful
        # whitespace around it (there is no "outside" left to push cells
        # to), so such hotspots are skipped.
        if outer.area > 0.5 * core.area:
            continue
        hot_units = _dominant_units(placement, hotspot, max_source_units)

        # 1. Detach everything currently inside the wrapper: the hotspot's
        #    own ("hot") cells and the bystanders.
        hot_cells = [
            cell for cell in placement.cells_in_rect(outer) if cell.unit in hot_units
        ]
        bystanders = placement.evict_from_rect(outer, keep_units=hot_units)

        # 2. Spread the hot cells uniformly over the *inner* rectangle,
        #    leaving the surrounding ring as whitespace.
        if hot_cells:
            try:
                pack_into_region(placement, hot_cells, inner)
            except ValueError:
                # The inner rectangle cannot hold them (extremely dense
                # hotspot): fall back to the full wrapper rectangle.
                pack_into_region(placement, hot_cells, outer)

        # 3. Re-insert the bystanders into the nearest free space outside
        #    the wrapper.  Whitespace is fragmented (every row is spread
        #    evenly), so cells that do not fit into any single gap are
        #    force-inserted by consolidating the whitespace of the closest
        #    row with enough total slack — the placement always stays legal.
        unmoved = placement.relocate_outside(bystanders, outer)
        leftover = placement.relocate_outside(unmoved, Rect(0.0, 0.0, 0.0, 0.0))
        for cell in leftover:
            placement.force_insert(cell, avoid_rect=outer)

        wrapped.append(
            WrappedHotspot(
                hotspot_index=hotspot.index,
                inner_rect=inner,
                outer_rect=outer,
                hot_units=list(hot_units),
                num_hot_cells=len(hot_cells),
                num_evicted=len(bystanders) - len(unmoved),
                num_unmoved=len(unmoved),
            )
        )

    num_fillers = len(insert_fillers(placement)) if add_fillers else 0
    return HotspotWrapperResult(placement=placement, wrapped=wrapped, num_fillers=num_fillers)
