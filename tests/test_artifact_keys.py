"""Property tests for the content-addressed artifact keys.

Two invariants make the flow graph trustworthy:

* **Sensitivity** — any semantically meaningful mutation (a moved cell, an
  added gate, a different overhead, another solver backend) changes the
  digest of every stage it feeds, so a stale artifact can never be served.
* **Stability** — semantically neutral round-trips (``Netlist.copy()``,
  pickling, re-parsing a canonical strategy spec such as ``hw:ring_um=8``
  versus ``hw:ring_um=8.0``) leave the digests bit-for-bit unchanged, so
  equal work is never repeated.

The digests feed :class:`~repro.flow.graph.FlowGraph` stage keys, so both
directions are also checked at the stage level through execution counters.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.flow import ArtifactStore, FlowGraph, netlist_digest, placement_digest
from repro.flow.artifacts import hash_parts, power_digest, thermal_map_digest
from repro.netlist.cell import CellInstance

_SETTINGS = dict(max_examples=20, deadline=None,
                 suppress_health_check=[HealthCheck.function_scoped_fixture])


def _clone(placement):
    """An independent, content-equal copy of a placement."""
    return pickle.loads(pickle.dumps(placement))


class TestHashParts:
    @given(value=st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
        st.floats(allow_nan=False),
        st.text(max_size=40),
        st.binary(max_size=40),
        st.lists(st.floats(allow_nan=False), max_size=10),
        st.dictionaries(st.text(max_size=8), st.integers(), max_size=6),
    ))
    @settings(max_examples=60, deadline=None)
    def test_digest_is_deterministic(self, value):
        assert hash_parts(value) == hash_parts(value)

    @given(a=st.floats(allow_nan=False), b=st.floats(allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_distinct_floats_have_distinct_digests(self, a, b):
        """hash-equal <=> bitwise-equal for the float encoding."""
        if a == b:
            assert hash_parts(a) == hash_parts(b)
        else:
            assert hash_parts(a) != hash_parts(b)

    def test_types_are_tagged(self):
        # 1 vs 1.0 vs True vs "1" must all be distinct key material even
        # though Python considers some of them equal.
        digests = {hash_parts(1), hash_parts(1.0), hash_parts(True), hash_parts("1")}
        assert len(digests) == 4

    def test_containers_are_shape_sensitive(self):
        assert hash_parts([1, 2], [3]) != hash_parts([1], [2, 3])
        a = np.arange(6, dtype=float)
        assert hash_parts(a.reshape(2, 3)) != hash_parts(a.reshape(3, 2))

    def test_unsupported_types_are_rejected(self):
        with pytest.raises(TypeError):
            hash_parts(object())


class TestNoOpRoundTrips:
    def test_netlist_copy_preserves_digest(self, small_circuit):
        assert netlist_digest(small_circuit.copy()) == netlist_digest(small_circuit)

    def test_pickle_round_trip_preserves_digests(self, small_placement):
        clone = _clone(small_placement)
        assert netlist_digest(clone.netlist) == netlist_digest(small_placement.netlist)
        assert placement_digest(clone) == placement_digest(small_placement)

    def test_power_report_round_trip(self, small_power):
        clone = pickle.loads(pickle.dumps(small_power))
        assert power_digest(clone) == power_digest(small_power)

    def test_thermal_map_round_trip(self, small_thermal):
        clone = pickle.loads(pickle.dumps(small_thermal))
        assert thermal_map_digest(clone) == thermal_map_digest(small_thermal)

    def test_canonical_spec_reparse_is_a_stage_hit(
        self, small_placement, small_power, small_thermal
    ):
        """``hw:ring_um=8`` and ``hw:ring_um=8.0`` canonicalise to the same
        spec, so the second request must be served from the store."""
        flow = FlowGraph(store=ArtifactStore())
        first = flow.whitespace(
            small_placement, small_power, small_thermal, strategy="hw:ring_um=8"
        )
        again = flow.whitespace(
            small_placement, small_power, small_thermal, strategy="hw:ring_um=8.0"
        )
        assert flow.stage_executions["whitespace"] == 1
        assert flow.stage_hits["whitespace"] == 1
        assert again.key == first.key

    def test_digest_is_identity_insensitive(self, small_placement):
        """Two object graphs with equal content share one key space."""
        flow = FlowGraph(store=ArtifactStore())
        k1 = flow.synth(small_placement.netlist.copy()).key
        k2 = flow.synth(small_placement.netlist.copy()).key
        assert k1 == k2
        assert flow.stage_executions["synth"] == 1


class TestMutationSensitivity:
    @given(cell_index=st.integers(min_value=0, max_value=10_000),
           delta=st.floats(min_value=0.25, max_value=40.0))
    @settings(**_SETTINGS)
    def test_moving_any_cell_changes_placement_digest_only(
        self, small_placement, cell_index, delta
    ):
        clone = _clone(small_placement)
        cells = list(clone.netlist.cells.values())
        cell = cells[cell_index % len(cells)]
        before_placement = placement_digest(clone)
        before_netlist = netlist_digest(clone.netlist)
        cell.place(cell.x + delta, cell.y, cell.row)
        assert placement_digest(clone) != before_placement
        assert netlist_digest(clone.netlist) == before_netlist

    def test_ulp_sized_move_changes_digest(self, small_placement):
        """Even a one-ULP coordinate change is a different placement."""
        clone = _clone(small_placement)
        cell = next(iter(clone.netlist.cells.values()))
        before = placement_digest(clone)
        cell.place(math.nextafter(cell.x, math.inf), cell.y, cell.row)
        assert placement_digest(clone) != before

    @given(width=st.integers(min_value=1, max_value=6))
    @settings(**_SETTINGS)
    def test_structural_edit_changes_netlist_digest(self, small_placement, width):
        clone = _clone(small_placement)
        before = netlist_digest(clone.netlist)
        previous = None
        for i in range(width):
            cell = clone.netlist.add_cell(f"added_{i}", "INV_X1", unit="extra")
            clone.netlist.connect(f"added_net_{i}", cell.pin("A"))
            if previous is not None:
                clone.netlist.connect(f"added_net_{i}", previous.pin("Y"))
            previous = cell
        assert netlist_digest(clone.netlist) != before

    def test_direct_coordinate_write_plus_epoch_bump(self, small_placement):
        """The documented contract for raw x/y writes: bump the epoch and
        the memoised digest refreshes."""
        clone = _clone(small_placement)
        before = placement_digest(clone)
        cell = next(iter(clone.netlist.cells.values()))
        cell.x += 3.0
        CellInstance.bump_placement_epoch()
        assert placement_digest(clone) != before

    def test_power_perturbation_changes_power_digest(self, small_power):
        from dataclasses import replace

        from repro.power import PowerReport

        powers = dict(small_power.cell_powers)
        name = next(iter(powers))
        entry = powers[name]
        powers[name] = replace(
            entry, switching=math.nextafter(entry.switching, math.inf)
        )
        perturbed = PowerReport(
            powers, small_power.frequency_hz, small_power.temperature
        )
        assert power_digest(perturbed) != power_digest(small_power)


class TestStageKeySensitivity:
    def test_overhead_and_strategy_change_whitespace_key(
        self, small_placement, small_power, small_thermal
    ):
        flow = FlowGraph(store=ArtifactStore())
        base = flow.whitespace(small_placement, small_power, small_thermal,
                               strategy="eri", area_overhead=0.15)
        other_overhead = flow.whitespace(small_placement, small_power, small_thermal,
                                         strategy="eri", area_overhead=0.20)
        other_strategy = flow.whitespace(small_placement, small_power, small_thermal,
                                         strategy="default", area_overhead=0.15)
        keys = {base.key, other_overhead.key, other_strategy.key}
        assert len(keys) == 3
        assert flow.stage_executions["whitespace"] == 3

    def test_solver_method_changes_thermal_key(
        self, small_placement, small_power
    ):
        flow = FlowGraph(store=ArtifactStore())
        legal = flow.legalize(small_placement, small_power, nx=12, ny=12)
        lu = flow.thermal(legal.power_map, legal.grid, method="lu")
        mg = flow.thermal(legal.power_map, legal.grid, method="multigrid")
        assert lu.key != mg.key
        assert flow.stage_executions["thermal"] == 2
        # Same method again: pure hit.
        flow.thermal(legal.power_map, legal.grid, method="lu")
        assert flow.stage_executions["thermal"] == 2
        assert flow.stage_hits["thermal"] == 1

    def test_grid_resolution_changes_legalize_key(
        self, small_placement, small_power
    ):
        flow = FlowGraph(store=ArtifactStore())
        a = flow.legalize(small_placement, small_power, nx=12, ny=12)
        b = flow.legalize(small_placement, small_power, nx=16, ny=16)
        assert a.key != b.key
        assert flow.stage_executions["legalize"] == 2

    def test_temperature_changes_sta_key(self, small_placement):
        flow = FlowGraph(store=ArtifactStore())
        cold = flow.sta(small_placement, temperature=40.0)
        hot = flow.sta(small_placement, temperature=math.nextafter(40.0, math.inf))
        assert cold.key != hot.key
        assert flow.stage_executions["sta"] == 2
