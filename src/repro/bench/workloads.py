"""Workloads: per-unit activity profiles that shape the hotspots.

"The reason behind using a synthetic benchmark is that in this way we are
able to control the size and position of hotspots using different
workloads." (Section IV.)  A workload in this reproduction is a mapping
from unit name to the toggle probability of that unit's primary inputs:
units running at full data activity become hotspots, idle units only burn
clock and leakage power.

Two named workloads mirror the paper's two test sets:

* :func:`scattered_hotspots_workload` — four *small* units active (the
  paper's first experiment: "four scattered small hotspots");
* :func:`concentrated_hotspot_workload` — the largest unit (plus its
  equally large neighbour) active (the second experiment: "a single,
  large, concentrated hotspot").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..netlist import Netlist


#: Toggle probability of the inputs of an active unit (busy random data).
ACTIVE_TOGGLE_PROBABILITY = 0.5

#: Toggle probability of the inputs of an idle unit (operands nearly static).
IDLE_TOGGLE_PROBABILITY = 0.02


@dataclass
class Workload:
    """A named per-unit activity profile.

    Attributes:
        name: Workload name (used in reports).
        active_units: Units driven with busy random operands.
        active_probability: Input toggle probability of active units.
        idle_probability: Input toggle probability of idle units.
        unit_overrides: Optional per-unit toggle-probability overrides that
            take precedence over the active/idle split.
    """

    name: str
    active_units: List[str] = field(default_factory=list)
    active_probability: float = ACTIVE_TOGGLE_PROBABILITY
    idle_probability: float = IDLE_TOGGLE_PROBABILITY
    unit_overrides: Dict[str, float] = field(default_factory=dict)

    def unit_probability(self, unit: str) -> float:
        """Toggle probability for the inputs of ``unit``."""
        if unit in self.unit_overrides:
            return self.unit_overrides[unit]
        if unit in self.active_units:
            return self.active_probability
        return self.idle_probability

    def port_toggle_probabilities(self, netlist: Netlist) -> Dict[str, float]:
        """Per-primary-input toggle probabilities for this workload.

        Ports created by the synthetic-benchmark builder are prefixed with
        ``<unit>__``; ports that do not match any unit get the idle
        probability.
        """
        units = netlist.units()
        probabilities: Dict[str, float] = {}
        for port in netlist.primary_inputs:
            unit = _unit_of_port(port.name, units)
            probabilities[port.name] = (
                self.unit_probability(unit) if unit is not None else self.idle_probability
            )
        return probabilities

    def describe(self) -> str:
        """One-line human-readable description."""
        active = ", ".join(self.active_units) if self.active_units else "none"
        return (
            f"workload {self.name}: active=[{active}] "
            f"(p_active={self.active_probability}, p_idle={self.idle_probability})"
        )


def _unit_of_port(port_name: str, units: Sequence[str]) -> Optional[str]:
    """Resolve which unit a (prefixed) port name belongs to."""
    for unit in units:
        if port_name.startswith(f"{unit}__"):
            return unit
    return None


def scattered_hotspots_workload(
    netlist: Netlist,
    num_hotspots: int = 4,
    regions: Optional[Mapping[str, object]] = None,
) -> Workload:
    """The paper's first test set: several small scattered hotspots.

    ``num_hotspots`` of the smaller units are activated so the hotspots are
    small.  When the placement's per-unit ``regions`` are provided, the
    active units are additionally chosen to be far apart on the die (the
    subset of the smaller units that maximises the minimum pairwise
    region-centre distance), so the hotspots are genuinely *scattered* as in
    the paper's first experiment.

    Args:
        netlist: The synthetic benchmark.
        num_hotspots: Number of small units to activate.
        regions: Optional mapping unit name -> region rectangle (anything
            with a ``center`` attribute), e.g. ``placement.regions``.

    Returns:
        The :class:`Workload`.

    Raises:
        ValueError: If the netlist has fewer units than ``num_hotspots``.
    """
    sizes = _unit_sizes(netlist)
    if len(sizes) < num_hotspots:
        raise ValueError(
            f"need at least {num_hotspots} units, netlist has {len(sizes)}"
        )
    by_size = [unit for unit, _count in sorted(sizes.items(), key=lambda kv: kv[1])]

    if regions is None:
        active = by_size[:num_hotspots]
    else:
        # Consider the smaller two thirds of the units and pick the subset
        # whose regions are as spread out as possible (greedy max-min).
        pool = [u for u in by_size[: max(num_hotspots, (2 * len(by_size)) // 3)] if u in regions]
        if len(pool) < num_hotspots:
            pool = [u for u in by_size if u in regions]
        if len(pool) < num_hotspots:
            active = by_size[:num_hotspots]
        else:
            centers = {u: regions[u].center for u in pool}

            def distance(a: str, b: str) -> float:
                (ax, ay), (bx, by) = centers[a], centers[b]
                return ((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5

            # Seed with the two most distant units, then grow greedily.
            best_pair = max(
                ((a, b) for a in pool for b in pool if a < b),
                key=lambda pair: distance(*pair),
            )
            active = list(best_pair)
            while len(active) < num_hotspots:
                candidate = max(
                    (u for u in pool if u not in active),
                    key=lambda u: min(distance(u, chosen) for chosen in active),
                )
                active.append(candidate)
    return Workload(name="scattered_small_hotspots", active_units=sorted(active))


def concentrated_hotspot_workload(netlist: Netlist, num_units: int = 1) -> Workload:
    """The paper's second test set: a single large concentrated hotspot.

    The ``num_units`` *largest* units are activated (default one), creating
    one big contiguous hot region.

    Args:
        netlist: The synthetic benchmark.
        num_units: Number of large units to activate.

    Returns:
        The :class:`Workload`.
    """
    sizes = _unit_sizes(netlist)
    if not sizes:
        raise ValueError("netlist has no units")
    largest = [unit for unit, _count in sorted(sizes.items(), key=lambda kv: -kv[1])]
    return Workload(
        name="concentrated_large_hotspot", active_units=largest[: max(num_units, 1)]
    )


def uniform_workload(netlist: Netlist, probability: float = ACTIVE_TOGGLE_PROBABILITY) -> Workload:
    """Every unit equally active (no deliberate hotspot)."""
    return Workload(
        name="uniform",
        active_units=list(netlist.units()),
        active_probability=probability,
        idle_probability=probability,
    )


def custom_workload(name: str, active_units: Iterable[str],
                    active_probability: float = ACTIVE_TOGGLE_PROBABILITY,
                    idle_probability: float = IDLE_TOGGLE_PROBABILITY) -> Workload:
    """Build a workload from an explicit list of active units."""
    return Workload(
        name=name,
        active_units=list(active_units),
        active_probability=active_probability,
        idle_probability=idle_probability,
    )


def _unit_sizes(netlist: Netlist) -> Dict[str, int]:
    sizes: Dict[str, int] = {}
    for cell in netlist.logic_cells():
        sizes[cell.unit] = sizes.get(cell.unit, 0) + 1
    return sizes
