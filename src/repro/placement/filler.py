"""Filler (dummy) cell insertion.

Both techniques in the paper fill the whitespace they create with dummy
cells: "cells which do not contain active transistors and consume zero
power", guaranteeing power/ground rail continuity and design-rule
compliance.  This module inserts library filler cells into every free gap
of every placement row (greedy, widest filler first) and can remove them
again before a placement is re-optimised.
"""

from __future__ import annotations

from typing import List

from ..netlist import CellInstance
from .placement import Placement


_FILLER_PREFIX = "FILLER_"


def insert_fillers(placement: Placement, prefix: str = _FILLER_PREFIX) -> List[CellInstance]:
    """Fill every row gap with filler cells.

    Gaps are covered greedily with the widest filler that fits, repeated
    until the remaining space is narrower than the narrowest filler.

    Args:
        placement: Placement whose rows will be filled (modified in place).
        prefix: Instance-name prefix for the created fillers.

    Returns:
        The list of inserted filler cell instances.
    """
    library = placement.netlist.library
    fillers = library.filler_cells()
    if not fillers:
        return []
    min_width = min(f.width_um for f in fillers)
    inserted: List[CellInstance] = []
    counter = _next_filler_index(placement, prefix)

    for row in placement.rows:
        for gap_start, gap_end in row.gaps():
            cursor = gap_start
            remaining = gap_end - cursor
            while remaining >= min_width - 1e-9:
                master = next(
                    (f for f in fillers if f.width_um <= remaining + 1e-9), None
                )
                if master is None:
                    break
                name = f"{prefix}{counter}"
                counter += 1
                inst = placement.netlist.add_cell(name, master)
                row.add(inst, cursor)
                inserted.append(inst)
                cursor += master.width_um
                remaining = gap_end - cursor
        row.sort()
    return inserted


def remove_fillers(placement: Placement, prefix: str = _FILLER_PREFIX) -> int:
    """Remove previously inserted filler cells.

    Args:
        placement: Placement to clean up (modified in place).
        prefix: Instance-name prefix used at insertion time.

    Returns:
        The number of filler instances removed.
    """
    to_remove = [
        cell
        for cell in placement.netlist.cells.values()
        if cell.is_filler and cell.name.startswith(prefix)
    ]
    for cell in to_remove:
        placement.remove(cell)
        placement.netlist.remove_cell(cell.name)
    return len(to_remove)


def filler_area(placement: Placement) -> float:
    """Total area of placed filler cells in square micrometres."""
    return sum(c.area for c in placement.netlist.filler_cells() if c.is_placed)


def _next_filler_index(placement: Placement, prefix: str) -> int:
    """First unused integer suffix for filler instance names."""
    highest = -1
    for name in placement.netlist.cells:
        if name.startswith(prefix):
            suffix = name[len(prefix):]
            if suffix.isdigit():
                highest = max(highest, int(suffix))
    return highest + 1
