"""SPICE-netlist export and a small internal SPICE-like DC solver.

The paper's thermal model is solved "using SPICE to solve the equivalent RC
electrical network".  We do not ship HSPICE, so this module provides both
directions of that interface:

* :func:`write_spice_netlist` exports the steady-state thermal network
  (resistors, current sources, the ambient voltage source) as a SPICE deck
  that an external simulator could run verbatim;
* :func:`solve_spice_netlist` parses such a deck and solves its DC
  operating point with modified nodal analysis (MNA), so the exported deck
  can be verified against the internal sparse solve — this is the "wrap the
  thermal simulator" substitution described in DESIGN.md.

The supported SPICE subset is exactly what the thermal network needs:
``R`` (resistor), ``I`` (DC current source), ``V`` (DC voltage source),
comments (``*``) and ``.end``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .network import ThermalNetwork

#: Name of the ambient (ground reference) node in exported decks.
AMBIENT_NODE = "0"


@dataclass
class SpiceCircuit:
    """A parsed SPICE deck (resistors, current sources, voltage sources).

    Node names are kept as strings; ``"0"`` is ground.
    """

    resistors: List[Tuple[str, str, str, float]] = field(default_factory=list)
    current_sources: List[Tuple[str, str, str, float]] = field(default_factory=list)
    voltage_sources: List[Tuple[str, str, str, float]] = field(default_factory=list)
    title: str = ""

    def node_names(self) -> List[str]:
        """All non-ground node names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for _, a, b, _value in self.resistors + self.current_sources + self.voltage_sources:
            for node in (a, b):
                if node != AMBIENT_NODE and node not in seen:
                    seen[node] = None
        return list(seen)


def node_name(index: int) -> str:
    """SPICE node name for a thermal-network node index (``-1`` is ambient)."""
    return AMBIENT_NODE if index < 0 else f"n{index}"


def write_spice_netlist(
    network: ThermalNetwork,
    power_per_cell: np.ndarray,
    ambient: Optional[float] = None,
    title: str = "thermal network (steady state)",
) -> str:
    """Export the thermal network plus a power map as a SPICE deck.

    Temperatures appear as node voltages: the ambient is a DC voltage source
    of value ``ambient`` behind the ground reference, every conductance
    becomes a resistor and every active-layer thermal cell with non-zero
    power becomes a DC current source injecting that power.

    Args:
        network: The assembled thermal network.
        power_per_cell: Power map of shape ``(ny, nx)`` in watts.
        ambient: Ambient temperature (defaults to the package's).
        title: First line of the deck.

    Returns:
        The SPICE deck as a string.
    """
    grid = network.grid
    ambient_value = grid.package.ambient_celsius if ambient is None else ambient
    lines = [f"* {title}"]
    lines.append(f"* grid {grid.nx}x{grid.ny}x{grid.nz}, ambient {ambient_value} C")

    elements = network.elements()
    # The ambient behaves as node "amb" held at the ambient temperature.
    lines.append(f"Vamb amb {AMBIENT_NODE} DC {ambient_value:.6g}")

    for idx, (a, b, g) in enumerate(elements.conductances):
        node_a = node_name(a)
        node_b = "amb" if b < 0 else node_name(b)
        resistance = 1.0 / g
        lines.append(f"R{idx} {node_a} {node_b} {resistance:.9g}")

    rhs = network.power_vector(np.asarray(power_per_cell, dtype=float))
    count = 0
    for node, power in enumerate(rhs):
        if power > 0.0:
            # Current flows from ground into the node (heating it).
            lines.append(f"I{count} {AMBIENT_NODE} {node_name(node)} DC {power:.9g}")
            count += 1

    lines.append(".end")
    lines.append("")
    return "\n".join(lines)


def parse_spice_netlist(text: str) -> SpiceCircuit:
    """Parse the supported SPICE subset into a :class:`SpiceCircuit`.

    Raises:
        ValueError: On malformed element cards.
    """
    circuit = SpiceCircuit()
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("*"):
            if line.startswith("*") and not circuit.title:
                circuit.title = line[1:].strip()
            continue
        if line.lower().startswith(".end"):
            break
        tokens = line.split()
        name = tokens[0]
        kind = name[0].upper()
        if kind == "R":
            if len(tokens) < 4:
                raise ValueError(f"malformed resistor card: {line!r}")
            circuit.resistors.append((name, tokens[1], tokens[2], float(tokens[3])))
        elif kind in ("I", "V"):
            value_token = tokens[-1]
            if len(tokens) < 4:
                raise ValueError(f"malformed source card: {line!r}")
            value = float(value_token)
            entry = (name, tokens[1], tokens[2], value)
            if kind == "I":
                circuit.current_sources.append(entry)
            else:
                circuit.voltage_sources.append(entry)
        else:
            raise ValueError(f"unsupported SPICE element: {line!r}")
    return circuit


def solve_spice_netlist(text: str) -> Dict[str, float]:
    """Solve the DC operating point of a parsed deck with MNA.

    Returns:
        Mapping node name -> node voltage (temperature).  Ground is not
        included.

    Raises:
        ValueError: If the deck contains no elements.
    """
    circuit = parse_spice_netlist(text)
    nodes = circuit.node_names()
    if not nodes and not circuit.voltage_sources:
        raise ValueError("empty SPICE deck")
    index = {name: i for i, name in enumerate(nodes)}
    num_nodes = len(nodes)
    num_vsrc = len(circuit.voltage_sources)
    size = num_nodes + num_vsrc

    matrix = sp.lil_matrix((size, size))
    rhs = np.zeros(size)

    def stamp_conductance(a: str, b: str, g: float) -> None:
        ia = index.get(a)
        ib = index.get(b)
        if ia is not None:
            matrix[ia, ia] += g
        if ib is not None:
            matrix[ib, ib] += g
        if ia is not None and ib is not None:
            matrix[ia, ib] -= g
            matrix[ib, ia] -= g

    for _name, a, b, resistance in circuit.resistors:
        if resistance <= 0.0:
            raise ValueError(f"non-positive resistance on {_name}")
        stamp_conductance(a, b, 1.0 / resistance)

    for _name, a, b, current in circuit.current_sources:
        # Convention: current flows from node a to node b through the source,
        # i.e. it is injected into node b and drawn from node a.
        ia = index.get(a)
        ib = index.get(b)
        if ia is not None:
            rhs[ia] -= current
        if ib is not None:
            rhs[ib] += current

    for k, (_name, a, b, voltage) in enumerate(circuit.voltage_sources):
        row = num_nodes + k
        ia = index.get(a)
        ib = index.get(b)
        if ia is not None:
            matrix[ia, row] += 1.0
            matrix[row, ia] += 1.0
        if ib is not None:
            matrix[ib, row] -= 1.0
            matrix[row, ib] -= 1.0
        rhs[row] = voltage

    solution = spla.spsolve(matrix.tocsc(), rhs)
    return {name: float(solution[i]) for name, i in index.items()}
