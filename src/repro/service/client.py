"""Client for the ``repro serve`` daemon (stdlib socket + JSON).

:class:`SweepClient` speaks the newline-delimited JSON protocol of
:class:`~repro.service.server.SweepServer`: one request object per line,
one response per line.  Sweep responses come back as
:class:`~repro.flow.runner.CampaignResult` objects, so downstream analysis
code cannot tell a served sweep from a local one.  JSON is lossless here —
Python serialises floats with shortest-round-trip ``repr`` — so records
fetched over the wire are bitwise equal to the server's.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults import InjectedFault, RetryPolicy, inject
from ..flow.runner import CampaignRecord, CampaignResult

logger = logging.getLogger(__name__)


class ServiceError(RuntimeError):
    """The server answered a request with an error."""


class AuthError(ServiceError):
    """The server rejected this client's auth token (not retryable)."""


class ThrottledError(ServiceError):
    """A 429-style rejection survived every retry the policy allowed.

    Attributes:
        code: The server's rejection code (``throttled``, ``quota``,
            ``overloaded``, ``shed``, or ``pressure``).
        retry_after_s: The server's last retry hint, for callers that
            implement their own scheduling on top of the client.
    """

    def __init__(
        self, message: str, code: str = "throttled",
        retry_after_s: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after_s = retry_after_s


def _request_raw(
    host: str, port: int, payload: Dict[str, object], timeout: float
) -> Dict[str, object]:
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall(json.dumps(payload).encode() + b"\n")
        chunks: List[bytes] = []
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    raw = b"".join(chunks)
    if not raw:
        raise ConnectionError("server closed the connection without a response")
    return json.loads(raw)


def request_once(
    host: str,
    port: int,
    payload: Dict[str, object],
    timeout: float = 600.0,
    retry_policy: Optional[RetryPolicy] = None,
) -> Dict[str, object]:
    """Send one request object and return the parsed response.

    Opens a fresh connection per call; :class:`SweepClient` wraps this
    with response checking and record decoding.  When ``retry_policy``
    allows more than one attempt, connect/read failures (``OSError`` —
    which covers ``ConnectionError`` and ``socket.timeout``) are retried
    with deterministic backoff before giving up.

    Raises:
        ConnectionError: The server closed without responding (after any
            retries the policy allows).
        OSError: Connect or socket failure after exhausting retries.
    """
    policy = retry_policy if retry_policy is not None else RetryPolicy()
    op = payload.get("op")
    attempt = 0
    while True:
        try:
            inject("client.request", {"op": op, "attempt": attempt})
            return _request_raw(host, port, payload, timeout)
        except (OSError, InjectedFault) as error:
            attempt += 1
            if not policy.classify(error) or attempt >= policy.max_attempts:
                raise
            delay = policy.delay_s(attempt, token=f"client:{op}")
            logger.warning(
                "request %r to %s:%d failed (%s); retry %d/%d in %.2fs",
                op, host, port, error, attempt, policy.max_attempts - 1, delay,
            )
            time.sleep(delay)


class SweepClient:
    """Submit sweep requests to a running :class:`SweepServer`.

    Args:
        host: Server host.
        port: Server port.
        timeout: End-to-end deadline per request.  It bounds the socket
            wait locally *and* travels with sweep requests as
            ``timeout_s``, so the server stops waiting on points this
            client will no longer collect.
        retry_policy: Connection retry behaviour; defaults to three
            attempts with short deterministic backoff.  Pass
            ``RetryPolicy()`` (one attempt) to fail fast.  The same
            attempt budget covers 429-style rejections (throttled, shed,
            overloaded): each retry waits the *larger* of the policy's
            backoff and the server's ``retry_after_s`` hint.
        token: Shared-secret auth token, required when the server was
            started with ``--auth-token-file``.
        client_id: Identity quotas and fairness are keyed by; defaults
            to ``<hostname>:<pid>``, stable for this process.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7410,
        timeout: float = 600.0,
        retry_policy: Optional[RetryPolicy] = None,
        token: Optional[str] = None,
        client_id: Optional[str] = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {timeout}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(max_attempts=3, backoff_s=0.05)
        )
        self.token = token
        self.client_id = (
            client_id
            if client_id is not None
            else f"{socket.gethostname()}:{os.getpid()}"
        )

    def _request(self, payload: Dict[str, object]) -> Dict[str, object]:
        payload = dict(payload)
        payload["client"] = self.client_id
        if self.token is not None:
            payload["token"] = self.token
        op = payload.get("op")
        attempt = 0
        while True:
            response = request_once(
                self.host,
                self.port,
                payload,
                timeout=self.timeout,
                retry_policy=self.retry_policy,
            )
            if response.get("ok"):
                return response
            error = str(response.get("error", "unknown server error"))
            code = response.get("code")
            if code == "auth":
                raise AuthError(error)
            retry_after = response.get("retry_after_s")
            if not response.get("retryable"):
                raise ServiceError(error)
            # A retryable 429-style rejection: honor the server's
            # retry_after floor (its token-bucket refill estimate) on
            # top of the policy's own deterministic backoff.
            attempt += 1
            if attempt >= self.retry_policy.max_attempts:
                raise ThrottledError(
                    error,
                    code=str(code or "throttled"),
                    retry_after_s=(
                        float(retry_after) if retry_after is not None else None
                    ),
                )
            delay = self.retry_policy.delay_for(
                attempt,
                token=f"client:{op}:{self.client_id}",
                retry_after_s=(
                    float(retry_after) if retry_after is not None else None
                ),
            )
            logger.info(
                "request %r rejected (%s); retry %d/%d in %.2fs",
                op, code, attempt, self.retry_policy.max_attempts - 1, delay,
            )
            time.sleep(delay)

    def ping(self) -> Dict[str, object]:
        """Protocol identifier and served workloads of the daemon."""
        return self._request({"op": "ping"})

    def health(self) -> Dict[str, object]:
        """Liveness probe: ``status`` (serving/draining) and pending count."""
        return self._request({"op": "health"})

    def stats(self) -> Dict[str, object]:
        """Lifetime server counters (store, batching, solver cache)."""
        return self._request({"op": "stats"})["stats"]

    def shutdown_server(self, drain: bool = False) -> None:
        """Ask the daemon to stop (it acknowledges, then exits).

        With ``drain=True`` the server refuses new work but lets in-flight
        batches finish before exiting.
        """
        self._request({"op": "shutdown", "drain": drain})

    def sweep(
        self,
        workload: str,
        strategies: Sequence[str],
        overheads: Sequence[float],
        analyze_timing: bool = False,
    ) -> Tuple[CampaignResult, Dict[str, object]]:
        """Sweep a (strategies x overheads) grid on one served workload.

        Returns:
            ``(result, stats)`` — the records in grid order wrapped as a
            :class:`CampaignResult`, and the request's service stats
            (``store_hits``, ``inflight_joins``, ``computed``, plus the
            server's lifetime counters under ``"server"``).

        Raises:
            ServiceError: Unknown workload, bad spec, or a server-side
                evaluation failure.
        """
        response = self._request(
            {
                "op": "sweep",
                "workload": workload,
                "strategies": list(strategies),
                "overheads": [float(value) for value in overheads],
                "analyze_timing": analyze_timing,
                "timeout_s": self.timeout,
            }
        )
        records = [CampaignRecord.from_dict(row) for row in response["records"]]
        stats: Dict[str, object] = dict(response.get("stats", {}))
        metadata = {
            "name": "served-sweep",
            "workloads": [workload],
            "strategies": list(strategies),
            "overheads": [float(value) for value in overheads],
            "analyze_timing": analyze_timing,
            "num_points": len(records),
            "service": stats,
        }
        return CampaignResult(records=records, metadata=metadata), stats


__all__ = [
    "AuthError",
    "ServiceError",
    "SweepClient",
    "ThrottledError",
    "request_once",
]
