"""Gate and interconnect delay models.

Used to verify the paper's claim that "the maximum timing overhead caused
by applying the proposed methods is around 2%": after a post-placement
transformation moves cells, net lengths change and so do wire delays.

Delay model:

* cell delay = intrinsic delay + drive resistance x output load
  (the library stores resistance in kilo-ohms and capacitance in
  femtofarads, so the product is directly in picoseconds);
* wire delay = Elmore delay of a lumped RC estimated from the net's
  half-perimeter wirelength;
* temperature derating per the paper's introduction: cell (drive current)
  degradation of about 4% per 10 Celsius and interconnect degradation of
  about 5% per 10 Celsius.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..netlist import (
    CELL_DELAY_TEMP_COEFF,
    NOMINAL_TEMPERATURE,
    WIRE_CAP_PER_UM,
    WIRE_DELAY_TEMP_COEFF,
    WIRE_RES_PER_UM,
    CellInstance,
    Net,
)


@dataclass
class DelayModel:
    """Temperature-aware delay calculator.

    Attributes:
        temperature: Operating temperature in Celsius.
        wire_cap_per_um: Wire capacitance in fF per micrometre.
        wire_res_per_um: Wire resistance in ohms per micrometre.
        fallback_wireload_um: Net length assumed when a net's terminals are
            not placed (pre-placement estimation).
    """

    temperature: float = NOMINAL_TEMPERATURE
    wire_cap_per_um: float = WIRE_CAP_PER_UM
    wire_res_per_um: float = WIRE_RES_PER_UM
    fallback_wireload_um: float = 8.0

    # -- derating -------------------------------------------------------------

    def cell_derating(self, temperature: Optional[float] = None) -> float:
        """Multiplier on cell delay at the given temperature."""
        temp = self.temperature if temperature is None else temperature
        return 1.0 + CELL_DELAY_TEMP_COEFF * (temp - NOMINAL_TEMPERATURE)

    def wire_derating(self, temperature: Optional[float] = None) -> float:
        """Multiplier on wire delay at the given temperature."""
        temp = self.temperature if temperature is None else temperature
        return 1.0 + WIRE_DELAY_TEMP_COEFF * (temp - NOMINAL_TEMPERATURE)

    # -- loads ---------------------------------------------------------------

    def net_length_um(self, net: Net) -> float:
        """Estimated routed length of a net in micrometres (HPWL based)."""
        length = net.hpwl()
        if length <= 0.0:
            length = self.fallback_wireload_um * max(net.num_sinks, 1)
        return length

    def net_load_ff(self, net: Net) -> float:
        """Total load capacitance on a net, in femtofarads."""
        pin_cap = sum(pin.cell.master.input_cap_ff for pin in net.sink_pins)
        wire_cap = self.wire_cap_per_um * self.net_length_um(net)
        return pin_cap + wire_cap

    # -- delays --------------------------------------------------------------

    def cell_delay_ps(self, cell: CellInstance, net: Optional[Net],
                      temperature: Optional[float] = None) -> float:
        """Delay through ``cell`` driving ``net``, in picoseconds."""
        load_ff = self.net_load_ff(net) if net is not None else 0.0
        raw = cell.master.intrinsic_delay_ps + cell.master.drive_res_kohm * load_ff
        return raw * self.cell_derating(temperature)

    def wire_delay_ps(self, net: Net, temperature: Optional[float] = None) -> float:
        """Elmore delay of the net's lumped wire RC, in picoseconds.

        ``0.5 * R_wire * C_wire`` with both terms proportional to the
        estimated length; ohms x femtofarads gives femtoseconds, hence the
        1e-3 conversion to picoseconds.
        """
        length = self.net_length_um(net)
        resistance_ohm = self.wire_res_per_um * length
        capacitance_ff = self.wire_cap_per_um * length
        raw_ps = 0.5 * resistance_ohm * capacitance_ff * 1e-3
        return raw_ps * self.wire_derating(temperature)

    def stage_delay_ps(self, cell: CellInstance, net: Optional[Net],
                       temperature: Optional[float] = None) -> float:
        """Cell delay plus the driven net's wire delay."""
        total = self.cell_delay_ps(cell, net, temperature)
        if net is not None:
            total += self.wire_delay_ps(net, temperature)
        return total
