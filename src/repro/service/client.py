"""Client for the ``repro serve`` daemon (stdlib socket + JSON).

:class:`SweepClient` speaks the newline-delimited JSON protocol of
:class:`~repro.service.server.SweepServer`: one request object per line,
one response per line.  Sweep responses come back as
:class:`~repro.flow.runner.CampaignResult` objects, so downstream analysis
code cannot tell a served sweep from a local one.  JSON is lossless here —
Python serialises floats with shortest-round-trip ``repr`` — so records
fetched over the wire are bitwise equal to the server's.
"""

from __future__ import annotations

import json
import socket
from typing import Dict, List, Optional, Sequence, Tuple

from ..flow.runner import CampaignRecord, CampaignResult


class ServiceError(RuntimeError):
    """The server answered a request with an error."""


def request_once(
    host: str, port: int, payload: Dict[str, object], timeout: float = 600.0
) -> Dict[str, object]:
    """Send one request object and return the parsed response.

    Opens a fresh connection per call; :class:`SweepClient` wraps this
    with response checking and record decoding.

    Raises:
        ConnectionError: The server closed without responding.
    """
    with socket.create_connection((host, port), timeout=timeout) as conn:
        conn.sendall(json.dumps(payload).encode() + b"\n")
        chunks: List[bytes] = []
        while True:
            chunk = conn.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    raw = b"".join(chunks)
    if not raw:
        raise ConnectionError("server closed the connection without a response")
    return json.loads(raw)


class SweepClient:
    """Submit sweep requests to a running :class:`SweepServer`.

    Args:
        host: Server host.
        port: Server port.
        timeout: Socket timeout per request (sweeps block until the
            server has solved every requested point).
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7410, timeout: float = 600.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, payload: Dict[str, object]) -> Dict[str, object]:
        response = request_once(self.host, self.port, payload, timeout=self.timeout)
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown server error"))
        return response

    def ping(self) -> Dict[str, object]:
        """Protocol identifier and served workloads of the daemon."""
        return self._request({"op": "ping"})

    def stats(self) -> Dict[str, object]:
        """Lifetime server counters (store, batching, solver cache)."""
        return self._request({"op": "stats"})["stats"]

    def shutdown_server(self) -> None:
        """Ask the daemon to stop (it acknowledges, then exits)."""
        self._request({"op": "shutdown"})

    def sweep(
        self,
        workload: str,
        strategies: Sequence[str],
        overheads: Sequence[float],
        analyze_timing: bool = False,
    ) -> Tuple[CampaignResult, Dict[str, object]]:
        """Sweep a (strategies x overheads) grid on one served workload.

        Returns:
            ``(result, stats)`` — the records in grid order wrapped as a
            :class:`CampaignResult`, and the request's service stats
            (``store_hits``, ``inflight_joins``, ``computed``, plus the
            server's lifetime counters under ``"server"``).

        Raises:
            ServiceError: Unknown workload, bad spec, or a server-side
                evaluation failure.
        """
        response = self._request(
            {
                "op": "sweep",
                "workload": workload,
                "strategies": list(strategies),
                "overheads": [float(value) for value in overheads],
                "analyze_timing": analyze_timing,
            }
        )
        records = [CampaignRecord.from_dict(row) for row in response["records"]]
        stats: Dict[str, object] = dict(response.get("stats", {}))
        metadata = {
            "name": "served-sweep",
            "workloads": [workload],
            "strategies": list(strategies),
            "overheads": [float(value) for value in overheads],
            "analyze_timing": analyze_timing,
            "num_points": len(records),
            "service": stats,
        }
        return CampaignResult(records=records, metadata=metadata), stats


__all__ = ["SweepClient", "ServiceError", "request_once"]
