"""Netlist data model: library, cells, nets, netlist container and I/O."""

from .library import (
    CELL_DELAY_TEMP_COEFF,
    NOMINAL_TEMPERATURE,
    ROW_HEIGHT,
    SITE_WIDTH,
    VDD,
    WIRE_CAP_PER_UM,
    WIRE_DELAY_TEMP_COEFF,
    WIRE_RES_PER_UM,
    CellLibrary,
    MasterCell,
    default_library,
)
from .cell import CellInstance, Pin
from .compiled import CompiledNetlist, GateGroup
from .net import Net, Port
from .netlist import Netlist
from .verilog import read_verilog, write_verilog
from .defio import DefDie, read_def, write_def

__all__ = [
    "CELL_DELAY_TEMP_COEFF",
    "NOMINAL_TEMPERATURE",
    "ROW_HEIGHT",
    "SITE_WIDTH",
    "VDD",
    "WIRE_CAP_PER_UM",
    "WIRE_DELAY_TEMP_COEFF",
    "WIRE_RES_PER_UM",
    "CellLibrary",
    "MasterCell",
    "default_library",
    "CellInstance",
    "Pin",
    "CompiledNetlist",
    "GateGroup",
    "Net",
    "Port",
    "Netlist",
    "read_verilog",
    "write_verilog",
    "DefDie",
    "read_def",
    "write_def",
]
