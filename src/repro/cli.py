"""Command-line interface: ``python -m repro`` (or the ``repro`` script).

Eight subcommands drive the campaign machinery end to end and persist
results to disk:

``quickstart``
    The full Figure-2 flow on one strategy/overhead point — place, estimate
    power, solve thermal, apply a technique, re-simulate, report.

``sweep``
    The Figure-6 grid (strategy x overhead) on the scattered-hotspot test
    set, executed by :class:`~repro.flow.runner.Campaign` with a shared
    solver cache, written as JSON (and optionally CSV).  With
    ``--result-store DIR`` the sweep is incremental and resumable
    (Ctrl-C flushes finished points; a rerun computes only the rest), and
    ``--executor process`` shards points across worker processes.

``table1``
    The Table-I concentrated-hotspot comparison (Default versus ERI at
    matched row counts), written as JSON (and optionally CSV).

``serve``
    Long-running sweep daemon: prepares the baselines once, then answers
    client sweep requests from the result store, deduplicates in-flight
    points across requests, and solves the rest in cross-request
    geometry-grouped batches.

``submit``
    Client for ``serve``: submit one sweep request and write the records
    exactly like a local ``sweep`` run.

``cache``
    Inspect (``stats``) or prune (``prune``, by age and/or size) on-disk
    artifact caches and result stores.

``fsck``
    Audit (and with ``--repair`` fix) a store a crashed or killed process
    left behind: orphaned single-flight claims, unpublished ``.tmp.*``
    files, corrupt or misnamed entries.

``strategies``
    List the registered whitespace strategies with their defaults and
    tunable parameters.

Strategy arguments accept any registered spec — a name (``eri``), a
parameterized spec (``hw:ring_um=8,max_source_units=3``), or a comma-
separated list of specs — and are validated against the registry before
any expensive work starts; a typo exits with code 2 and a "did you mean"
suggestion.  Every run prints the corresponding plain-text report and
writes machine-readable records under ``--out`` (default ``results/``).
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from .analysis import figure6_report, table1_report
from .bench import (
    build_synthetic_circuit,
    concentrated_hotspot_workload,
    scattered_hotspots_workload,
    small_synthetic_circuit,
)
from .core import describe_strategies, resolve_strategy, split_spec_list
from .faults import RetryPolicy, install_env_plan
from .flow import (
    ArtifactStore,
    Campaign,
    CampaignResult,
    ExperimentSetup,
    FlowGraph,
    ResultStore,
    SolverCache,
    concentrated_hotspot_table,
    evaluate_strategy,
    fsck_store,
    prune_store,
    records_from_outcomes,
    scan_store,
)

logger = logging.getLogger("repro.cli")

#: Overheads swept by ``repro sweep`` when not overridden; includes the
#: paper's 15% reference point.
SWEEP_OVERHEADS = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30)


def _positive_int(text: str) -> int:
    """Argparse type for counts that must be strictly positive."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {text}")
    return value


def _positive_float(text: str) -> float:
    """Argparse type for durations that must be strictly positive."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid float value: {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive number, got {text}")
    return value


def _nonnegative_int(text: str) -> int:
    """Argparse type for counts where zero is meaningful (e.g. retries)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _quota_spec(text: str):
    """Argparse type for ``--quota key=value[,...]`` (validated up front)."""
    from .service import ClientQuota

    try:
        return ClientQuota.parse(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _strategy_spec(text: str) -> str:
    """Argparse type for a single strategy spec, validated up front.

    Resolution against the registry happens at parse time, so an unknown
    name or bad parameter exits with code 2 (argparse's usage error) and a
    "did you mean" suggestion before any placement or solve starts.
    """
    try:
        return resolve_strategy(text).spec
    except (TypeError, ValueError) as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _strategy_spec_list(text: str) -> List[str]:
    """Argparse type for a comma-separated list of strategy specs.

    Commas inside a spec's parameter list (``hw:ring_um=8,max_source_units=3``)
    are kept with their spec; every resulting spec is validated as in
    :func:`_strategy_spec`.
    """
    specs = [_strategy_spec(spec) for spec in split_spec_list(text)]
    if not specs:
        raise argparse.ArgumentTypeError(f"no strategy specs in {text!r}")
    return specs


def _flatten_strategies(values: Sequence) -> List[str]:
    """Flatten argparse ``--strategies`` values (lists or bare defaults)."""
    flat: List[str] = []
    for value in values:
        if isinstance(value, str):
            flat.append(value)
        else:
            flat.extend(value)
    return flat


def _add_common_arguments(parser: argparse.ArgumentParser, default_full: bool = False) -> None:
    parser.add_argument(
        "--full", dest="full", action="store_true", default=default_full,
        help="use the full paper-sized (~12k cell) benchmark"
             + (" (default)" if default_full else ""),
    )
    parser.add_argument(
        "--small", dest="full", action="store_false",
        help="use the scaled-down benchmark (fast)"
             + ("" if default_full else " (default)"),
    )
    parser.add_argument(
        "--out", type=Path, default=Path("results"),
        help="directory for result files (default: results/)",
    )
    parser.add_argument(
        "--csv", action="store_true",
        help="also write the records as CSV next to the JSON file",
    )
    parser.add_argument(
        "--utilization", type=float, default=0.85,
        help="baseline utilization factor (default: 0.85)",
    )
    parser.add_argument(
        "--cycles", type=_positive_int, default=24,
        help="logic-simulation cycles for activity estimation (default: 24)",
    )
    parser.add_argument(
        "--seed", type=int, default=2010,
        help="random seed for vector generation (default: 2010)",
    )
    parser.add_argument(
        "--grid", type=_positive_int, default=40, metavar="N",
        help="thermal grid resolution per axis (default: 40, as in the paper)",
    )
    parser.add_argument(
        "--thermal-solver", choices=("auto", "lu", "multigrid"), default="auto",
        help="steady-state solver backend: sparse LU factorisation, "
             "geometric multigrid, or auto (pick by grid size; default)",
    )
    parser.add_argument(
        "--artifact-cache", type=Path, default=None, metavar="DIR",
        help="persist flow artifacts content-addressed under DIR; a repeated "
             "run (same circuit, strategies, knobs) then re-executes only "
             "the stages whose inputs changed",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="log per-point progress while the campaign runs",
    )


def _build_circuit(args: argparse.Namespace):
    return build_synthetic_circuit() if args.full else small_synthetic_circuit()


def _build_flow(args: argparse.Namespace) -> FlowGraph:
    """The staged flow graph every subcommand runs through.

    ``--artifact-cache DIR`` adds the on-disk tier, so artifacts survive
    the process and a re-run starts warm.
    """
    store = ArtifactStore(root=args.artifact_cache)
    return FlowGraph(store=store, solver_cache=SolverCache(method=args.thermal_solver))


def _stage_summary(flow: FlowGraph) -> str:
    """One-line ``stage=executed(+hits)`` summary for run reports."""
    stats = flow.stats()
    executions = stats["stage_executions"]
    hits = stats["stage_hits"]
    parts = []
    for stage in sorted(set(executions) | set(hits)):
        ran = executions.get(stage, 0)
        hit = hits.get(stage, 0)
        parts.append(f"{stage}={ran}" + (f"(+{hit} cached)" if hit else ""))
    return ", ".join(parts) if parts else "none"


def _prepare_setup(
    args: argparse.Namespace, workload_builder, flow: FlowGraph
) -> ExperimentSetup:
    netlist = _build_circuit(args)
    workload = workload_builder(netlist)
    logger.info(
        "benchmark %s: %d cells, workload %s",
        netlist.name, netlist.num_cells, workload.name,
    )
    return ExperimentSetup.prepare(
        netlist,
        workload,
        base_utilization=args.utilization,
        grid_nx=args.grid,
        grid_ny=args.grid,
        num_cycles=args.cycles,
        seed=args.seed,
        flow=flow,
    )


def _write_result(result: CampaignResult, args: argparse.Namespace, stem: str) -> Path:
    json_path = result.to_json(args.out / f"{stem}.json")
    print(f"wrote {json_path}")
    if args.csv:
        csv_path = result.to_csv(args.out / f"{stem}.csv")
        print(f"wrote {csv_path}")
    return json_path


# -- subcommands -------------------------------------------------------------


def run_quickstart(args: argparse.Namespace) -> int:
    """One strategy/overhead point end to end, with a human-readable report."""
    flow = _build_flow(args)
    cache = flow.solver_cache
    setup = _prepare_setup(args, scattered_hotspots_workload, flow)
    floorplan = setup.placement.floorplan
    print(f"benchmark: {setup.netlist.name}, {setup.netlist.num_cells} cells")
    print(f"baseline:  core {floorplan.core_width:.0f} x {floorplan.core_height:.0f} um, "
          f"total power {setup.power.total() * 1e3:.1f} mW, "
          f"peak rise {setup.thermal_map.peak_rise:.2f} K, "
          f"{len(setup.hotspots)} hotspot(s)")

    start = time.perf_counter()
    outcome = evaluate_strategy(
        setup, args.strategy, args.overhead, analyze_timing=True, flow=flow
    )
    elapsed = time.perf_counter() - start
    print(f"{outcome.strategy}: requested {outcome.requested_overhead * 100:.1f}% -> "
          f"actual {outcome.actual_overhead * 100:.1f}% overhead, "
          f"{outcome.inserted_rows} rows inserted")
    print(f"peak rise {setup.thermal_map.peak_rise:.2f} K -> {outcome.peak_rise:.2f} K "
          f"({outcome.temperature_reduction * 100:.1f}% reduction), "
          f"timing overhead {outcome.timing_overhead * 100:+.2f}%")

    result = CampaignResult(
        records=records_from_outcomes(setup.workload.name, [outcome], elapsed),
        metadata={
            "command": "quickstart",
            "benchmark": setup.netlist.name,
            "baseline_peak_rise_k": setup.thermal_map.peak_rise,
            "solver_cache": cache.stats().as_dict(),
            "flow_stages": flow.stats(),
        },
    )
    print(f"flow stages: {_stage_summary(flow)}")
    _write_result(result, args, "quickstart")
    return 0


def run_sweep(args: argparse.Namespace) -> int:
    """The Figure-6 (strategy x overhead) grid via the campaign runner."""
    flow = _build_flow(args)
    setup = _prepare_setup(args, scattered_hotspots_workload, flow)
    store = ResultStore(root=args.result_store) if args.result_store else None
    # The process executor is incompatible with batched solves and the
    # artifact graph (both are per-process); it brings its own parallelism.
    sharded = args.executor == "process"
    if args.max_point_retries < 0:
        raise ValueError("--max-point-retries must be >= 0")
    retry_policy = RetryPolicy(max_attempts=args.max_point_retries + 1)
    campaign = Campaign(
        setup,
        strategies=_flatten_strategies(args.strategies),
        overheads=tuple(args.overheads),
        analyze_timing=args.timing,
        cache=flow.solver_cache,
        name="figure6-sweep",
        batch_solves=not sharded,
        flow=None if sharded else flow,
        result_store=store,
        executor=args.executor,
        retry_policy=retry_policy,
        fail_fast=args.fail_fast,
        point_timeout_s=args.point_timeout,
    )
    result = campaign.run(max_workers=args.jobs)
    result.metadata.update({
        "command": "sweep",
        "benchmark": setup.netlist.name,
        "baseline_peak_rise_k": setup.thermal_map.peak_rise,
    })
    print(figure6_report(result.outcomes()))
    print(f"{len(result.records)} points in {result.metadata['elapsed_s']:.2f}s "
          f"(solver cache: {result.cache_hits} hits / {result.cache_misses} "
          f"builds, {result.cache_hit_rate * 100:.0f}% hit rate, "
          f"{result.metadata['num_solve_groups']} batched solve groups)")
    if store is not None:
        print(f"result store: {result.metadata['store_hits']} stored point(s) "
              f"reused, {result.metadata['num_evaluated']} evaluated")
    if result.metadata.get("num_failed"):
        failures = result.failed_points
        print(f"{len(failures)} point(s) quarantined after exhausting retries "
              f"({result.metadata.get('retries', 0)} retry attempt(s), "
              f"{result.metadata.get('timeouts', 0)} deadline timeout(s), "
              f"{result.metadata.get('respawns', 0)} worker respawn(s)):")
        for entry in failures:
            print(f"  {entry['workload']}/{entry['strategy']}"
                  f"@{entry['overhead']}: {entry['error']}")
    if result.metadata.get("degraded_points"):
        print(f"{result.metadata['degraded_points']} point(s) solved via the "
              f"LU fallback (degraded=True in the records)")
    if result.metadata.get("interrupted"):
        print("interrupted: rerun with the same --result-store to resume")
    print(f"flow stages: {_stage_summary(flow)}")
    _write_result(result, args, "figure6")
    return 0


def run_table1(args: argparse.Namespace) -> int:
    """The Table-I concentrated-hotspot comparison (Default versus ERI)."""
    flow = _build_flow(args)
    cache = flow.solver_cache
    setup = _prepare_setup(args, concentrated_hotspot_workload, flow)
    start = time.perf_counter()
    outcomes = concentrated_hotspot_table(
        setup, row_counts=tuple(args.rows), analyze_timing=args.timing, cache=cache
    )
    elapsed = time.perf_counter() - start
    result = CampaignResult(
        records=records_from_outcomes(setup.workload.name, outcomes, elapsed),
        metadata={
            "command": "table1",
            "benchmark": setup.netlist.name,
            "row_counts": list(args.rows),
            "baseline_peak_rise_k": setup.thermal_map.peak_rise,
            "elapsed_s": elapsed,
            "solver_cache": cache.stats().as_dict(),
            "flow_stages": flow.stats(),
        },
    )
    print(table1_report(outcomes))
    _write_result(result, args, "table1")
    return 0


#: Workload builders ``repro serve`` can prepare, by short name.
SERVE_WORKLOADS = {
    "scattered": scattered_hotspots_workload,
    "concentrated": concentrated_hotspot_workload,
}


def run_serve(args: argparse.Namespace) -> int:
    """Start the long-running sweep daemon (see :mod:`repro.service`)."""
    from .service import SweepServer

    auth_token = None
    if args.auth_token_file is not None:
        try:
            auth_token = args.auth_token_file.read_text().strip()
        except OSError as error:
            raise ValueError(f"cannot read --auth-token-file: {error}") from None
        if not auth_token:
            raise ValueError(f"--auth-token-file {args.auth_token_file} is empty")
    flow = _build_flow(args)
    setups = {}
    for short_name in args.workloads:
        # Each workload gets its own circuit instance: preparation places
        # the design, mutating the netlist's coordinates.
        setup = _prepare_setup(args, SERVE_WORKLOADS[short_name], flow)
        setups[setup.workload.name] = setup
    store = ResultStore(root=args.result_store)
    server = SweepServer(
        setups,
        result_store=store,
        cache=flow.solver_cache,
        host=args.host,
        port=args.port,
        batch_window_s=args.batch_window,
        max_workers=args.jobs,
        request_timeout_s=args.request_timeout,
        point_timeout_s=args.point_timeout,
        auth_token=auth_token,
        quota=args.quota,
        max_inflight_points=args.max_inflight_points,
        max_pending_requests=args.max_pending_requests,
        max_request_bytes=args.max_request_bytes,
        max_rss_mb=args.max_rss_mb,
        artifact_store=flow.store,
    )
    host, port = server.address
    guards = []
    if auth_token:
        guards.append("token auth")
    if args.quota is not None:
        guards.append("per-client quotas")
    if args.max_inflight_points is not None:
        guards.append(f"max {args.max_inflight_points} in-flight points")
    if args.max_rss_mb is not None:
        guards.append(f"{args.max_rss_mb:g} MB memory budget")
    print(f"repro serve: listening on {host}:{port}, "
          f"workloads {sorted(setups)}"
          + (f", result store {args.result_store}" if args.result_store else "")
          + (f" [{', '.join(guards)}]" if guards else ""))
    try:
        server.serve_forever()
        # A protocol-op shutdown runs on a background thread; a draining
        # one may still be finishing in-flight batches when the accept
        # loop returns, so hold the process open until it completes.
        server.wait_closed(timeout=60.0)
    except KeyboardInterrupt:
        print("repro serve: shutting down")
        server.shutdown()
    return 0


def run_submit(args: argparse.Namespace) -> int:
    """Submit one sweep request to a running ``repro serve`` daemon."""
    from .faults import RetryPolicy
    from .service import AuthError, ServiceError, SweepClient

    token = args.token
    if token is None and args.token_file is not None:
        try:
            token = args.token_file.read_text().strip()
        except OSError as error:
            raise ValueError(f"cannot read --token-file: {error}") from None
    client = SweepClient(
        args.host, args.port, timeout=args.timeout,
        retry_policy=RetryPolicy(
            max_attempts=args.max_retries + 1, backoff_s=0.05
        ),
        token=token,
        client_id=args.client_id,
    )
    try:
        workload = args.workload
        if workload is None:
            served = client.ping()["workloads"]
            if not served:
                print("repro submit: error: server serves no workloads",
                      file=sys.stderr)
                return 2
            workload = served[0]
        result, stats = client.sweep(
            workload,
            strategies=_flatten_strategies(args.strategies),
            overheads=tuple(args.overheads),
            analyze_timing=args.timing,
        )
    except AuthError:
        print(f"repro submit: error: server {args.host}:{args.port} "
              f"rejected the auth token (pass --token/--token-file matching "
              f"the server's --auth-token-file)", file=sys.stderr)
        return 2
    except ServiceError as error:
        print(f"repro submit: error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        # Covers ConnectionError and socket timeouts: the daemon is down,
        # unreachable, or not answering at this address.
        print(f"repro submit: error: cannot reach server at "
              f"{args.host}:{args.port} ({error})", file=sys.stderr)
        return 2
    print(figure6_report(result.outcomes()))
    server_stats = stats.get("server", {})
    print(f"{stats['num_points']} points: {stats['store_hits']} from store, "
          f"{stats['inflight_joins']} joined in-flight, "
          f"{stats['computed']} computed "
          f"(server lifetime: {server_stats.get('points_solved', '?')} solved "
          f"in {server_stats.get('num_solve_groups', '?')} solve groups)")
    _write_result(result, args, f"submit-{workload}")
    return 0


def run_cache(args: argparse.Namespace) -> int:
    """Inspect or prune on-disk artifact caches and result stores."""
    status = 0
    for root in args.roots:
        if not root.exists():
            print(f"{root}: no store (directory does not exist)")
            status = 1
            continue
        if args.action == "stats":
            usage = scan_store(root)
            budget = ""
            if args.budget_mb is not None:
                # Byte usage against the operator's configured budget —
                # the capacity-planning view of `repro cache prune
                # --max-size-mb` and the serve-side memory governor.
                used_mb = usage.total_bytes / 1e6
                percent = 100.0 * used_mb / args.budget_mb
                budget = (f" — {percent:.0f}% of {args.budget_mb:g} MB "
                          f"budget")
                if used_mb > args.budget_mb:
                    budget += " (OVER)"
                    status = max(status, 1)
            print(f"{root}: {usage.entries} entries, "
                  f"{usage.total_bytes / 1e6:.2f} MB"
                  + (f", {usage.stray_files} stray file(s)"
                     if usage.stray_files else "")
                  + budget)
            for group in sorted(usage.by_group):
                count, size = usage.by_group[group]
                print(f"  {group:<12} {count:6d} entries  {size / 1e6:9.2f} MB")
        else:  # prune
            report = prune_store(
                root,
                max_age_days=args.max_age_days,
                max_size_mb=args.max_size_mb,
                dry_run=args.dry_run,
            )
            verb = "would remove" if args.dry_run else "removed"
            print(f"{root}: {verb} {report.removed} entries "
                  f"({report.freed_bytes / 1e6:.2f} MB), kept {report.kept}"
                  + (f", cleaned {report.strays_removed} stray file(s)"
                     if report.strays_removed else ""))
    return status


def run_fsck(args: argparse.Namespace) -> int:
    """Audit (and optionally repair) on-disk stores after a crash.

    Exit status: 0 when every root is clean (or everything found was
    repaired), 1 when problems remain — found without ``--repair``, or a
    repair itself failed.
    """
    status = 0
    for root in args.roots:
        if not root.exists():
            print(f"{root}: no store (directory does not exist)")
            status = 1
            continue
        report = fsck_store(
            root, repair=args.repair, verify_blobs=not args.no_verify
        )
        print(report.summary())
        unrepaired = report.num_problems - report.num_repaired
        if report.repair_errors or (report.num_problems and not args.repair):
            status = 1
        elif unrepaired > 0:
            status = 1
    return status


def run_strategies(args: argparse.Namespace) -> int:
    """List the registered whitespace strategies and their parameters."""
    rows = describe_strategies()
    name_width = max(len(str(row["name"])) for row in rows)
    print("registered whitespace strategies:")
    for row in rows:
        params = row["params"] or {}
        rendered = (
            ", ".join(f"{key}={value}" for key, value in sorted(params.items()))
            or "-"
        )
        print(f"  {row['name']:<{name_width}}  "
              f"threshold {row['default_hotspot_threshold']:.2f}  "
              f"params: {rendered}")
        if row["summary"]:
            print(f"  {'':<{name_width}}  {row['summary']}")
    print("\nspec grammar: NAME or NAME:key=value[,key=value...] "
          "(e.g. hw:ring_um=8,max_source_units=3); every strategy also "
          "accepts hotspot_threshold=FRACTION")
    return 0


# -- entry point -------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Post-placement temperature reduction (DATE 2010) "
                    "experiment campaigns.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    quickstart = subparsers.add_parser(
        "quickstart", help="run one strategy/overhead point end to end",
    )
    _add_common_arguments(quickstart)
    quickstart.add_argument(
        "--strategy", default="eri", type=_strategy_spec, metavar="SPEC",
        help="whitespace-allocation strategy spec, e.g. eri or "
             "hw:ring_um=8 (default: eri; see 'repro strategies')",
    )
    quickstart.add_argument(
        "--overhead", type=float, default=0.15,
        help="requested area overhead fraction (default: 0.15)",
    )
    quickstart.set_defaults(handler=run_quickstart)

    sweep = subparsers.add_parser(
        "sweep", help="run the Figure-6 strategy x overhead campaign",
    )
    # Figure 6 is defined on the paper-sized benchmark; --small gives a
    # fast approximation whose per-point differences sit in snapping noise.
    _add_common_arguments(sweep, default_full=True)
    sweep.add_argument(
        "--strategies", nargs="+", default=["default", "eri", "hw"],
        type=_strategy_spec_list, metavar="SPEC",
        help="strategy specs to sweep, space- or comma-separated; any "
             "registered spec works, e.g. hybrid gradient:exponent=2 "
             "(default: default eri hw; see 'repro strategies')",
    )
    sweep.add_argument(
        "--overheads", nargs="+", type=float, default=list(SWEEP_OVERHEADS),
        help="area-overhead sweep points (default: 5%% to 30%%)",
    )
    sweep.add_argument(
        "--timing", action="store_true",
        help="also run static timing analysis per point (slower)",
    )
    sweep.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="worker threads or processes (default: one per CPU)",
    )
    sweep.add_argument(
        "--max-point-retries", type=int, default=0, metavar="N",
        help="retry each failing grid point up to N times with backoff "
             "before quarantining it (default: 0, no retries)",
    )
    sweep.add_argument(
        "--fail-fast", action="store_true",
        help="abort the whole sweep on the first point failure instead of "
             "quarantining the point and completing the rest",
    )
    sweep.add_argument(
        "--result-store", type=Path, default=None, metavar="DIR",
        help="persist one record per completed grid point under DIR; a "
             "repeated or interrupted-and-rerun sweep then recomputes only "
             "the missing points",
    )
    sweep.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="fan points out over threads (default) or shard them across "
             "worker processes with shared-memory baselines",
    )
    sweep.add_argument(
        "--point-timeout", type=_positive_float, default=None,
        metavar="SECONDS",
        help="deadline per grid-point attempt; a point that exceeds it is "
             "cancelled (process workers: killed and respawned), retried "
             "per --max-point-retries, then quarantined (default: none)",
    )
    sweep.set_defaults(handler=run_sweep)

    table1 = subparsers.add_parser(
        "table1", help="run the Table-I concentrated-hotspot comparison",
    )
    _add_common_arguments(table1, default_full=True)
    table1.add_argument(
        "--rows", nargs="+", type=int, default=[20, 40],
        help="empty-row counts to insert (default: 20 40, as in the paper)",
    )
    table1.add_argument(
        "--timing", action="store_true",
        help="also run static timing analysis per point (slower)",
    )
    table1.set_defaults(handler=run_table1)

    serve = subparsers.add_parser(
        "serve", help="run the long-lived batching sweep daemon",
    )
    _add_common_arguments(serve)
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=7410,
        help="bind port; 0 picks a free one (default: 7410)",
    )
    serve.add_argument(
        "--workloads", nargs="+", choices=sorted(SERVE_WORKLOADS),
        default=["scattered"],
        help="workload baselines to prepare and serve (default: scattered)",
    )
    serve.add_argument(
        "--result-store", type=Path, default=None, metavar="DIR",
        help="persist served records under DIR (shared with offline "
             "'repro sweep --result-store' runs and across restarts)",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.05, metavar="SECONDS",
        help="how long to gather points across requests before solving a "
             "cross-request batch (default: 0.05)",
    )
    serve.add_argument(
        "--jobs", type=_positive_int, default=None, metavar="N",
        help="worker threads per batch evaluation (default: one per CPU)",
    )
    serve.add_argument(
        "--request-timeout", type=_positive_float, default=600.0,
        metavar="SECONDS",
        help="deadline per sweep request and per evaluation batch; a "
             "client's own timeout_s tightens it further (default: 600)",
    )
    serve.add_argument(
        "--point-timeout", type=_positive_float, default=None,
        metavar="SECONDS",
        help="deadline per grid-point attempt inside served batches; "
             "timed-out points are quarantined, not hung (default: none)",
    )
    serve.add_argument(
        "--auth-token-file", type=Path, default=None, metavar="FILE",
        help="require clients to present the shared secret stored in FILE "
             "(submit --token/--token-file); default: no auth",
    )
    serve.add_argument(
        "--quota", type=_quota_spec, default=None, metavar="SPEC",
        help="per-client limits as key=value[,key=value...]: "
             "requests_per_s, burst, max_points_per_request, "
             "max_inflight_points (e.g. "
             "'requests_per_s=5,max_inflight_points=64')",
    )
    serve.add_argument(
        "--max-inflight-points", type=_positive_int, default=None,
        metavar="N",
        help="hard cap on in-flight point futures across all clients; "
             "when full, queued points closest to their deadline are "
             "shed first (default: unbounded)",
    )
    serve.add_argument(
        "--max-pending-requests", type=_positive_int, default=None,
        metavar="N",
        help="cap on sweep requests served concurrently (default: "
             "unbounded)",
    )
    serve.add_argument(
        "--max-request-bytes", type=_positive_int, default=1_048_576,
        metavar="BYTES",
        help="largest accepted request line; longer frames get a "
             "structured payload_too_large error (default: 1 MiB)",
    )
    serve.add_argument(
        "--max-rss-mb", type=_positive_float, default=None, metavar="MB",
        help="process memory budget: above 80%% the in-memory caches "
             "shrink, at 100%% the server sheds work until pressure "
             "clears (default: no budget)",
    )
    serve.set_defaults(handler=run_serve)

    submit = subparsers.add_parser(
        "submit", help="submit one sweep request to a running serve daemon",
    )
    submit.add_argument(
        "--host", default="127.0.0.1",
        help="server address (default: 127.0.0.1)",
    )
    submit.add_argument(
        "--port", type=int, default=7410,
        help="server port (default: 7410)",
    )
    submit.add_argument(
        "--workload", default=None, metavar="NAME",
        help="served workload to sweep (default: the server's first)",
    )
    submit.add_argument(
        "--strategies", nargs="+", default=["default", "eri", "hw"],
        type=_strategy_spec_list, metavar="SPEC",
        help="strategy specs to sweep (default: default eri hw)",
    )
    submit.add_argument(
        "--overheads", nargs="+", type=float, default=list(SWEEP_OVERHEADS),
        help="area-overhead sweep points (default: 5%% to 30%%)",
    )
    submit.add_argument(
        "--timing", action="store_true",
        help="also request static timing analysis per point",
    )
    submit.add_argument(
        "--timeout", type=_positive_float, default=600.0, metavar="SECONDS",
        help="end-to-end request deadline; bounds the socket wait and is "
             "forwarded to the server as timeout_s (default: 600)",
    )
    submit.add_argument(
        "--token", default=None, metavar="SECRET",
        help="shared-secret auth token for a server started with "
             "--auth-token-file",
    )
    submit.add_argument(
        "--token-file", type=Path, default=None, metavar="FILE",
        help="read the auth token from FILE (first line, stripped); "
             "--token wins when both are given",
    )
    submit.add_argument(
        "--client-id", default=None, metavar="NAME",
        help="identity for per-client quotas and fair scheduling "
             "(default: hostname:pid)",
    )
    submit.add_argument(
        "--max-retries", type=_nonnegative_int, default=4, metavar="N",
        help="retries after throttled/shed rejections or connection "
             "failures, honoring the server's retry_after_s hint "
             "(default: 4)",
    )
    submit.add_argument(
        "--out", type=Path, default=Path("results"),
        help="directory for result files (default: results/)",
    )
    submit.add_argument(
        "--csv", action="store_true",
        help="also write the records as CSV next to the JSON file",
    )
    submit.add_argument(
        "-v", "--verbose", action="store_true",
        help="log request progress",
    )
    submit.set_defaults(handler=run_submit)

    cache = subparsers.add_parser(
        "cache", help="inspect or prune on-disk artifact/result stores",
    )
    cache.add_argument(
        "action", choices=("stats", "prune"),
        help="stats: show entry counts and sizes; prune: delete entries "
             "by age/size and clean stray temp/lock files",
    )
    cache.add_argument(
        "roots", nargs="+", type=Path, metavar="DIR",
        help="store directories (an --artifact-cache or --result-store DIR)",
    )
    cache.add_argument(
        "--max-age-days", type=float, default=None, metavar="DAYS",
        help="prune: remove entries older than DAYS",
    )
    cache.add_argument(
        "--max-size-mb", type=float, default=None, metavar="MB",
        help="prune: then remove oldest entries until the store fits MB",
    )
    cache.add_argument(
        "--budget-mb", type=_positive_float, default=None, metavar="MB",
        help="stats: report byte usage against a configured budget "
             "(exit 1 when a store exceeds it)",
    )
    cache.add_argument(
        "--dry-run", action="store_true",
        help="prune: report what would be removed without deleting",
    )
    cache.add_argument(
        "-v", "--verbose", action="store_true",
        help="log while scanning",
    )
    cache.set_defaults(handler=run_cache)

    fsck = subparsers.add_parser(
        "fsck", help="audit/repair stores after a crash or kill -9",
    )
    fsck.add_argument(
        "roots", nargs="+", type=Path, metavar="DIR",
        help="store directories (an --artifact-cache or --result-store DIR)",
    )
    fsck.add_argument(
        "--repair", action="store_true",
        help="delete claim/temp debris and quarantine damaged entries "
             "under DIR/.quarantine/ (default: report only, exit 1)",
    )
    fsck.add_argument(
        "--no-verify", action="store_true",
        help="skip reading and checksumming entry payloads (faster on "
             "very large stores; corrupt blobs then go undetected)",
    )
    fsck.add_argument(
        "-v", "--verbose", action="store_true",
        help="log while scanning",
    )
    fsck.set_defaults(handler=run_fsck)

    strategies = subparsers.add_parser(
        "strategies", help="list the registered whitespace strategies",
    )
    strategies.add_argument(
        "-v", "--verbose", action="store_true",
        help="log while listing (accepted for symmetry; listing is instant)",
    )
    strategies.set_defaults(handler=run_strategies)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.INFO if args.verbose else logging.WARNING,
        format="%(levelname)s %(name)s: %(message)s",
    )
    try:
        # Honor a REPRO_FAULTS fault-injection plan (chaos testing) for
        # every subcommand; a no-op when the variable is unset.
        install_env_plan()
        return args.handler(args)
    except ValueError as error:
        # Domain validation (negative overheads, bad worker counts, ...)
        # surfaces as a clean CLI error instead of a traceback.
        print(f"repro {args.command}: error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
