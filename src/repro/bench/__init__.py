"""Synthetic benchmark circuits and workloads."""

from .arith import (
    array_multiplier,
    carry_lookahead_adder,
    carry_save_adder_tree,
    multiply_accumulate,
    ripple_carry_adder,
    wallace_multiplier,
)
from .synthetic import (
    DEFAULT_UNITS,
    UnitSpec,
    build_synthetic_circuit,
    small_synthetic_circuit,
    unit_cell_counts,
)
from .workloads import (
    ACTIVE_TOGGLE_PROBABILITY,
    IDLE_TOGGLE_PROBABILITY,
    Workload,
    concentrated_hotspot_workload,
    custom_workload,
    scattered_hotspots_workload,
    uniform_workload,
)

__all__ = [
    "array_multiplier",
    "carry_lookahead_adder",
    "carry_save_adder_tree",
    "multiply_accumulate",
    "ripple_carry_adder",
    "wallace_multiplier",
    "DEFAULT_UNITS",
    "UnitSpec",
    "build_synthetic_circuit",
    "small_synthetic_circuit",
    "unit_cell_counts",
    "ACTIVE_TOGGLE_PROBABILITY",
    "IDLE_TOGGLE_PROBABILITY",
    "Workload",
    "concentrated_hotspot_workload",
    "custom_workload",
    "scattered_hotspots_workload",
    "uniform_workload",
    ]
