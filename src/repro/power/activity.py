"""Switching-activity annotation.

Bridges the logic simulator and the power model: a
:class:`SwitchingActivity` object stores, for every net, the average number
of transitions per clock cycle and the static (logic-1) probability — the
same quantities a SAIF/VCD-based flow annotates onto the netlist before
power analysis.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..netlist import Netlist
from .logicsim import LogicSimulator, SimulationResult
from .vectors import generate_vectors


@dataclass
class SwitchingActivity:
    """Per-net switching activity.

    Attributes:
        toggle_rates: Mapping net name -> average transitions per cycle.
        static_probabilities: Mapping net name -> probability of logic 1.
        net_order: Optional net-name alignment of :attr:`toggle_rate_array`;
            populated when the activity came from a compiled-engine
            simulation, letting the power model skip per-net dict lookups.
        toggle_rate_array: Toggle rates aligned with :attr:`net_order`.
    """

    toggle_rates: Dict[str, float] = field(default_factory=dict)
    static_probabilities: Dict[str, float] = field(default_factory=dict)
    net_order: Optional[List[str]] = field(default=None, repr=False)
    toggle_rate_array: Optional[np.ndarray] = field(default=None, repr=False)

    def toggle_rate(self, net: str, default: float = 0.0) -> float:
        """Toggle rate of ``net`` (transitions per cycle)."""
        return self.toggle_rates.get(net, default)

    def static_probability(self, net: str, default: float = 0.5) -> float:
        """Static probability of ``net`` being logic 1."""
        return self.static_probabilities.get(net, default)

    def aligned_toggle_rates(self, comp) -> np.ndarray:
        """Toggle rates as a vector aligned with a compiled netlist.

        Uses the stored array when its alignment matches; otherwise gathers
        from the dict (absent nets contribute ``0.0``, matching
        :meth:`toggle_rate`) and caches per compiled identity.
        """
        if self.toggle_rate_array is not None and (
            self.net_order is comp.net_names or self.net_order == comp.net_names
        ):
            return self.toggle_rate_array
        cache = getattr(self, "_aligned_cache", None)
        if cache is not None and cache[0]() is comp:
            return cache[1]
        rates = np.fromiter(
            (self.toggle_rates.get(name, 0.0) for name in comp.net_names),
            dtype=float,
            count=comp.num_nets,
        )
        # Weakly referenced so a long-lived activity never pins a compiled
        # netlist (and its whole design) that is otherwise dead.
        self._aligned_cache = (weakref.ref(comp), rates)
        return rates

    def scaled(self, factor: float) -> "SwitchingActivity":
        """Return a copy with every toggle rate multiplied by ``factor``."""
        if factor < 0.0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        return SwitchingActivity(
            toggle_rates={net: rate * factor for net, rate in self.toggle_rates.items()},
            static_probabilities=dict(self.static_probabilities),
            net_order=self.net_order,
            toggle_rate_array=(
                self.toggle_rate_array * factor
                if self.toggle_rate_array is not None
                else None
            ),
        )

    def average_toggle_rate(self) -> float:
        """Mean toggle rate over all annotated nets."""
        if not self.toggle_rates:
            return 0.0
        return sum(self.toggle_rates.values()) / len(self.toggle_rates)

    @classmethod
    def from_simulation(cls, netlist: Netlist, result: SimulationResult) -> "SwitchingActivity":
        """Build the annotation from a :class:`SimulationResult`."""
        if result.net_order is not None and result.net_order == list(netlist.nets):
            counted = result.num_cycles
            if counted > 1:
                rate_array = result.toggle_array / float(
                    (counted - 1) * result.batch_size
                )
            else:
                rate_array = np.zeros(len(result.net_order))
            if result.total_samples > 0:
                prob_array = result.one_array / float(result.total_samples)
            else:
                prob_array = np.zeros(len(result.net_order))
            return cls(
                toggle_rates=dict(zip(result.net_order, rate_array.tolist())),
                static_probabilities=dict(zip(result.net_order, prob_array.tolist())),
                net_order=result.net_order,
                toggle_rate_array=rate_array,
            )
        toggles: Dict[str, float] = {}
        probs: Dict[str, float] = {}
        for net_name in netlist.nets:
            toggles[net_name] = result.toggle_rate(net_name)
            probs[net_name] = result.static_probability(net_name)
        return cls(toggle_rates=toggles, static_probabilities=probs)

    @classmethod
    def uniform(cls, netlist: Netlist, toggle_rate: float = 0.2,
                static_probability: float = 0.5) -> "SwitchingActivity":
        """Uniform activity on every net (a quick vectorless estimate)."""
        return cls(
            toggle_rates={net: toggle_rate for net in netlist.nets},
            static_probabilities={net: static_probability for net in netlist.nets},
        )


def estimate_activity(
    netlist: Netlist,
    toggle_probabilities: Optional[Mapping[str, float]] = None,
    num_cycles: int = 24,
    batch_size: int = 32,
    default_probability: float = 0.5,
    seed: int = 2010,
    warmup_cycles: int = 2,
) -> SwitchingActivity:
    """Run vector generation + logic simulation and return net activity.

    This is the convenience path corresponding to the paper's
    "VCS logic simulation of randomly generated test vectors" step.

    Args:
        netlist: Design to simulate.
        toggle_probabilities: Per-primary-input toggle probability (see
            :func:`repro.power.vectors.generate_vectors`).
        num_cycles: Simulated clock cycles.
        batch_size: Parallel random streams.
        default_probability: Toggle probability for unlisted inputs.
        seed: Random seed.
        warmup_cycles: Cycles excluded from the statistics.

    Returns:
        The per-net :class:`SwitchingActivity`.
    """
    vectors = generate_vectors(
        netlist,
        toggle_probabilities or {},
        num_cycles=num_cycles,
        batch_size=batch_size,
        default_probability=default_probability,
        seed=seed,
    )
    simulator = LogicSimulator(netlist)
    result = simulator.simulate(vectors, warmup_cycles=warmup_cycles)
    return SwitchingActivity.from_simulation(netlist, result)
