"""Campaign service: the long-running ``repro serve`` daemon and its client.

The service tier turns the campaign runner into a shared resource: one
:class:`SweepServer` holds the prepared experiment baselines, the solver
cache and the persistent result store, and many concurrent clients submit
small sweep requests over a newline-delimited JSON socket protocol
(:class:`SweepClient`).  The daemon answers stored points straight from
the result store, deduplicates identical in-flight points *across
requests*, and funnels the remaining misses through a gather window into
cross-request, geometry-grouped multi-RHS batches — many small requests
amortized into a few big warm-started solves.

The front door is overload-safe: :class:`AdmissionController` enforces
optional shared-secret auth and per-client quotas
(:class:`ClientQuota`), the gather queue is fair across clients and
sheds oldest-deadline work when the in-flight bound is hit, and
:class:`ResourceGovernor` degrades the in-memory caches gracefully
against a configured RSS budget.  Rejections are structured 429-style
responses with a deterministic ``retry_after_s`` that
:class:`SweepClient` honors (:class:`ThrottledError` after retries run
out; :class:`AuthError` for a bad token).
"""

from .admission import AdmissionController, AdmissionError, ClientQuota
from .client import (
    AuthError,
    ServiceError,
    SweepClient,
    ThrottledError,
    request_once,
)
from .governor import ResourceGovernor
from .server import SweepServer

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AuthError",
    "ClientQuota",
    "ResourceGovernor",
    "ServiceError",
    "SweepClient",
    "SweepServer",
    "ThrottledError",
    "request_once",
]
